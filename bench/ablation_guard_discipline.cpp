// Ablation D: guard discipline vs premature wake (EF-T5, quantified).
//
// Table 1 says an EF-T5 failure — "thread is notified before it should be;
// thread prematurely re-enters the critical section" — is detected by
// completion-time checks.  The vulnerable coding pattern is `if (guard)
// wait()` instead of `while (guard) wait()`.  This bench measures how the
// vulnerability converts into actual failures as the environment becomes
// hostile (spurious-wakeup probability per unlock), comparing the correct
// while-guard against the if-guard mutant:
//   * while-guard: failure rate must stay 0 at every probability;
//   * if-guard: garbage values / corrupted state appear and grow with the
//     spurious rate; the guard-discipline detector flags the pattern even
//     in runs where no failure happened to manifest.
#include <cstdio>
#include <string>

#include "bench_json.hpp"
#include "confail/components/producer_consumer.hpp"
#include "confail/detect/wait_notify.hpp"
#include "confail/events/trace.hpp"
#include "confail/monitor/runtime.hpp"
#include "confail/sched/virtual_scheduler.hpp"

namespace detect = confail::detect;
namespace ev = confail::events;
namespace sched = confail::sched;
using confail::components::ProducerConsumer;
using confail::monitor::Runtime;

namespace {

struct Outcomes {
  int runs = 0;
  int wrongValue = 0;       // premature re-entry materialized as bad data
  int deadlocks = 0;        // premature consumption starved someone
  int guardFindings = 0;    // discipline detector flagged the pattern
};

Outcomes measure(bool ifGuard, double spuriousProb, int seeds) {
  Outcomes out;
  for (std::uint64_t seed = 1; seed <= static_cast<std::uint64_t>(seeds); ++seed) {
    ev::Trace trace;
    sched::RandomWalkStrategy strategy(seed);
    sched::VirtualScheduler::Options so;
    so.maxSteps = 50000;
    sched::VirtualScheduler s(strategy, so);
    Runtime rt(trace, s, seed);
    ProducerConsumer::Faults f;
    f.ifInsteadOfWhile = ifGuard;
    f.spuriousWakeProbability = spuriousProb;
    ProducerConsumer pc(rt, f);

    // One consumer waiting on an empty buffer; a churner creating
    // spurious-wake opportunities by cycling the monitor; a late producer.
    std::string got;
    rt.spawn("consumer", [&] { got.push_back(pc.receive()); });
    rt.spawn("churn", [&] {
      for (int i = 0; i < 15; ++i) {
        confail::monitor::Synchronized sync(pc.mon());
        rt.schedulePoint();
      }
    });
    rt.spawn("producer", [&] {
      for (int k = 0; k < 20; ++k) rt.schedulePoint();
      pc.send("v");
    });
    auto r = s.run();
    ++out.runs;
    if (r.outcome == sched::Outcome::Deadlock) {
      ++out.deadlocks;
    } else if (got != "v") {
      ++out.wrongValue;
    }
    detect::WaitNotifyAnalyzer wn;
    for (const auto& finding : wn.analyze(trace)) {
      if (finding.kind == detect::FindingKind::GuardNotRechecked) {
        ++out.guardFindings;
        break;
      }
    }
  }
  return out;
}

}  // namespace

int main() {
  std::printf("=== Ablation D: wait-guard discipline vs spurious wakeups ===\n");
  std::printf("EF-T5 made quantitative: `if (guard) wait()` vs `while`.\n\n");
  const int seeds = 60;
  std::printf("%-10s %-8s %8s %12s %10s %14s\n", "guard", "p(spur)", "runs",
              "bad-value", "deadlock", "guard-flagged");

  confail::benchjson::Writer json;
  json.beginObject();
  json.field("bench", "ablation_guard_discipline");
  json.field("seeds_per_cell", seeds);
  json.key("rows");
  json.beginArray();
  auto emitRow = [&json](const char* guard, double p, const Outcomes& o) {
    json.beginObject();
    json.field("guard", guard);
    json.field("spurious_prob", p);
    json.field("runs", o.runs);
    json.field("wrong_value", o.wrongValue);
    json.field("deadlocks", o.deadlocks);
    json.field("guard_findings", o.guardFindings);
    json.endObject();
  };

  int failures = 0;
  for (double p : {0.0, 0.1, 0.3, 0.6}) {
    Outcomes w = measure(/*ifGuard=*/false, p, seeds);
    std::printf("%-10s %-8.1f %8d %12d %10d %14d\n", "while", p, w.runs,
                w.wrongValue, w.deadlocks, w.guardFindings);
    emitRow("while", p, w);
    // The correct idiom must never fail, at any hostility level.
    if (w.wrongValue != 0 || w.deadlocks != 0) ++failures;

    Outcomes i = measure(/*ifGuard=*/true, p, seeds);
    std::printf("%-10s %-8.1f %8d %12d %10d %14d\n", "if", p, i.runs,
                i.wrongValue, i.deadlocks, i.guardFindings);
    emitRow("if", p, i);
    if (p >= 0.3 && i.wrongValue + i.deadlocks == 0) {
      ++failures;  // hostility this high must expose the mutant
    }
  }
  json.endArray();
  json.field("ok", failures == 0);
  json.endObject();

  std::printf("\nreading: the while-guard absorbs arbitrary spurious wakeups\n"
              "(zero failures in every row); the if-guard fails increasingly\n"
              "often as wakeups get more spurious, and the guard-discipline\n"
              "analysis flags the vulnerable pattern even in lucky runs.\n");
  if (json.writeFile("BENCH_ablation_guard.json")) {
    std::printf("\nwrote BENCH_ablation_guard.json\n");
  } else {
    std::printf("\nFAIL: could not write BENCH_ablation_guard.json\n");
    return 1;
  }
  std::printf("\n%s\n", failures == 0 ? "ABLATION D: OK" : "ABLATION D: FAILURES");
  return failures == 0 ? 0 : 1;
}
