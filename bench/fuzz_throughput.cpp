// Fuzz harness throughput: how fast the generator draws programs and how
// fast the differential-oracle battery chews through them.
//
// Two figures, emitted as BENCH_fuzz.json (schema mirrors the other
// committed BENCH_* documents):
//
//   1. Generation — programs/sec of generate() alone over a fixed seed
//      block, for the default and cleanOnly tiers.  Pure IR construction;
//      no exploration.  Also reports the mean op count as a sanity anchor
//      (a generator that shrank to trivial programs would look "faster").
//
//   2. Oracles — a full runFuzz() campaign (both tiers, all oracles, no
//      failures expected) over a seed block, reporting generated
//      programs/sec and oracle explorer-runs/sec end to end.  The campaign
//      must come back FUZZ OK: a bench that benchmarks a failing harness
//      measures nothing.
//
// `--smoke` shrinks both blocks so the binary finishes in a couple of
// seconds; the bench_smoke ctest entry runs that mode and the committed
// BENCH_fuzz.json comes from the same invocation.
#include <chrono>
#include <cstdio>
#include <cstring>

#include "bench_json.hpp"
#include "confail/gen/fuzz.hpp"
#include "confail/gen/generator.hpp"

namespace gen = confail::gen;

namespace {

double secondsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  bool ok = true;

  std::printf("=== Fuzz harness throughput (%s mode) ===\n\n",
              smoke ? "smoke" : "full");

  confail::benchjson::Writer json;
  json.beginObject();
  json.field("bench", "fuzz_throughput");
  json.field("smoke", smoke);

  // ---- 1. raw generation ---------------------------------------------------
  const std::uint64_t genSeeds = smoke ? 2000 : 20000;
  json.key("generation");
  json.beginArray();
  for (const bool clean : {false, true}) {
    gen::GenConfig cfg;
    cfg.cleanOnly = clean;
    if (clean) cfg.allowWaitNotify = false;
    std::uint64_t totalOps = 0;
    const auto t0 = std::chrono::steady_clock::now();
    for (std::uint64_t seed = 0; seed < genSeeds; ++seed) {
      const gen::Program p = gen::generate(seed, cfg);
      totalOps += p.opCount();
      if (!p.validate()) {
        std::printf("FAIL: seed %llu (%s tier) does not validate\n",
                    static_cast<unsigned long long>(seed),
                    clean ? "clean" : "default");
        ok = false;
      }
    }
    const double sec = secondsSince(t0);
    const double pps = sec > 0.0 ? static_cast<double>(genSeeds) / sec : 0.0;
    const double meanOps =
        static_cast<double>(totalOps) / static_cast<double>(genSeeds);
    std::printf("generation (%s tier): %llu programs in %.2fs "
                "(%.0f programs/sec, mean %.1f ops)\n",
                clean ? "clean" : "default",
                static_cast<unsigned long long>(genSeeds), sec, pps, meanOps);
    json.beginObject();
    json.field("tier", clean ? "clean" : "default");
    json.field("programs", genSeeds);
    json.field("seconds", sec);
    json.field("programs_per_sec", pps);
    json.field("mean_op_count", meanOps);
    json.endObject();
  }
  json.endArray();

  // ---- 2. oracle campaign --------------------------------------------------
  gen::FuzzOptions opts;
  opts.seedBegin = 0;
  opts.seedEnd = smoke ? 40 : 200;
  opts.oracle.checkClean = true;  // both tiers, all five oracles
  const gen::FuzzReport report = gen::runFuzz(opts);
  std::printf("\noracles: %llu seeds, %llu programs, %llu checks "
              "(%llu skipped), %llu explorer runs in %.2fs\n",
              static_cast<unsigned long long>(report.seedsRun),
              static_cast<unsigned long long>(report.programsGenerated),
              static_cast<unsigned long long>(report.oracleChecks),
              static_cast<unsigned long long>(report.oracleSkips),
              static_cast<unsigned long long>(report.exploreRuns),
              report.elapsedSec);
  std::printf("         %.1f programs/sec, %.0f oracle runs/sec\n",
              report.programsPerSec(), report.oracleRunsPerSec());
  if (!report.ok()) {
    std::printf("FAIL: the oracle campaign found failures:\n%s",
                report.human().c_str());
    ok = false;
  }

  json.key("oracles");
  json.beginObject();
  json.field("seeds", report.seedsRun);
  json.field("programs", report.programsGenerated);
  json.field("oracle_checks", report.oracleChecks);
  json.field("oracle_skips", report.oracleSkips);
  json.field("explorer_runs", report.exploreRuns);
  json.field("seconds", report.elapsedSec);
  json.field("programs_per_sec", report.programsPerSec());
  json.field("oracle_runs_per_sec", report.oracleRunsPerSec());
  json.field("ok", report.ok());
  json.endObject();
  json.endObject();

  if (!json.writeFile("BENCH_fuzz.json")) {
    std::printf("FAIL: could not write BENCH_fuzz.json\n");
    ok = false;
  } else {
    std::printf("\nwrote BENCH_fuzz.json\n");
  }

  std::printf("\n%s\n", ok ? "FUZZ THROUGHPUT: OK" : "FUZZ THROUGHPUT: FAILURES");
  return ok ? 0 : 1;
}
