// Future-work reproduction: "a comparison of this technique with those
// used in earlier work" (paper Section 7, future work item 2).
//
// Earlier work selected monitor test cases by *branch coverage* (Brinch
// Hansen 1978: every branch of every operation at least once) extended
// with *loop coverage* (Harvey & Strooper 2001, the paper's ref [13]:
// wait loops executed 0, 1 and >1 times) — but, as the paper says, "it was
// not clear why loop coverage was chosen".  The CoFG criterion explains
// it: loop iterations ARE the wait->wait arc.  This bench makes the
// comparison concrete: three minimal ConAn suites, one per criterion, are
// run against every producer-consumer mutant with a differential oracle.
//
// Expected shape: branch < loop <= CoFG-arc kills; loop and CoFG coincide
// on this component because its CoFG's extra arcs beyond branch coverage
// are exactly the loop arcs — the paper's justification, demonstrated.
#include <cstdio>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "confail/clock/abstract_clock.hpp"
#include "confail/cofg/cofg.hpp"
#include "confail/cofg/coverage.hpp"
#include "confail/components/producer_consumer.hpp"
#include "confail/conan/test_driver.hpp"
#include "confail/events/trace.hpp"
#include "confail/monitor/runtime.hpp"
#include "confail/sched/virtual_scheduler.hpp"

namespace cofg = confail::cofg;
namespace ev = confail::events;
namespace sched = confail::sched;
using confail::clock::AbstractClock;
using confail::components::ProducerConsumer;
using confail::conan::Call;
using confail::conan::TestDriver;
using confail::monitor::Runtime;

namespace {

struct Step {
  std::string thread;
  std::uint64_t tick;
  bool isSend;
  std::string payload;
};
using Sequence = std::vector<Step>;
using Suite = std::vector<Sequence>;

struct Observation {
  bool completed = false;
  std::uint64_t tick = 0;
  std::optional<std::int64_t> value;
  std::string error;
  bool operator==(const Observation&) const = default;
};

struct RunOutput {
  sched::Outcome outcome;
  std::vector<Observation> calls;
  double arcCoverage = 0.0;
};

RunOutput runSequence(const Sequence& steps, const ProducerConsumer::Faults& f,
                      bool measureCoverage) {
  ev::Trace trace;
  sched::RoundRobinStrategy strategy;
  sched::VirtualScheduler::Options so;
  so.maxSteps = 30000;
  sched::VirtualScheduler s(strategy, so);
  Runtime rt(trace, s, 11);
  AbstractClock clk(rt);
  TestDriver driver(rt, clk);
  ProducerConsumer pc(rt, f);

  for (const Step& st : steps) {
    Call c;
    c.thread = st.thread;
    c.startTick = st.tick;
    c.label = st.isSend ? "send" : "receive";
    if (st.isSend) {
      c.action = [&pc, payload = st.payload]() -> std::int64_t {
        pc.send(payload);
        return 0;
      };
    } else {
      c.action = [&pc]() -> std::int64_t { return pc.receive(); };
    }
    driver.add(std::move(c));
  }
  auto res = driver.execute();

  RunOutput out;
  out.outcome = res.run.outcome;
  for (const auto& r : res.reports) {
    out.calls.push_back(Observation{r.completed, r.completedAtTick, r.value,
                                    r.error});
  }
  if (measureCoverage) {
    cofg::Cofg rg = cofg::Cofg::build(ProducerConsumer::receiveModel());
    cofg::Cofg sg = cofg::Cofg::build(ProducerConsumer::sendModel());
    cofg::CoverageTracker rc(rg, pc.receiveMethodId());
    cofg::CoverageTracker sc(sg, pc.sendMethodId());
    auto events = trace.events();
    rc.process(events);
    sc.process(events);
    out.arcCoverage =
        static_cast<double>(rc.coveredArcs() + sc.coveredArcs()) /
        static_cast<double>(rc.totalArcs() + sc.totalArcs());
  }
  return out;
}

bool suiteKillsMutant(const Suite& suite, const ProducerConsumer::Faults& f) {
  for (const Sequence& seq : suite) {
    RunOutput golden = runSequence(seq, ProducerConsumer::Faults(), false);
    RunOutput got = runSequence(seq, f, false);
    if (got.outcome != golden.outcome || got.calls != golden.calls) {
      return true;
    }
  }
  return false;
}

Step send(std::string thread, std::uint64_t tick, std::string payload) {
  return Step{std::move(thread), tick, true, std::move(payload)};
}
Step recv(std::string thread, std::uint64_t tick) {
  return Step{std::move(thread), tick, false, {}};
}

}  // namespace

int main() {
  std::printf("=== Future work item 2: criterion comparison ===\n");
  std::printf("branch coverage (Brinch Hansen 1978) vs +loop coverage\n");
  std::printf("(ref [13]) vs CoFG arc coverage (this paper).\n\n");

  // Suite A — branch coverage: every guard both ways, no loop iteration.
  //   A1: send then receive (both guards false);
  //   A2: receive first (receive guard true), two sends back-to-back
  //       (second send's guard true).
  Suite branchSuite = {
      {send("p", 1, "x"), recv("c", 2)},
      {recv("c", 1), send("p", 2, "ab"), send("p", 3, "cd"), recv("c", 4),
       recv("c", 5), recv("c", 6), recv("c", 7)},
  };

  // Suite B — adds loop coverage: a wait loop iterating more than once
  //   (two consumers wait; a 1-char send wakes both; one re-waits).
  Suite loopSuite = branchSuite;
  loopSuite.push_back({recv("c1", 1), recv("c2", 2), send("p", 3, "a"),
                       send("p", 4, "b")});

  // Suite C — full CoFG arc coverage for BOTH methods (the Figure 3
  //   campaign: also drives send's wait->wait arc).
  Suite cofgSuite = loopSuite;
  cofgSuite.push_back({send("p", 1, "cd"), recv("c", 2), send("p", 3, "ef"),
                       recv("c", 4), send("p", 5, "gh"), recv("c", 6),
                       recv("c", 7), recv("c", 8), recv("c", 9)});

  // Verify the CoFG suite indeed reaches 100% arc coverage cumulatively.
  {
    double best = 0.0;
    for (const Sequence& seq : cofgSuite) {
      best = std::max(best, runSequence(seq, {}, true).arcCoverage);
    }
    std::printf("(top single-sequence arc coverage in CoFG suite: %.0f%%)\n\n",
                best * 100.0);
  }

  const std::vector<std::pair<std::string, ProducerConsumer::Faults>> mutants =
      [] {
        std::vector<std::pair<std::string, ProducerConsumer::Faults>> v;
        ProducerConsumer::Faults f;
        f.skipNotify = true;
        v.emplace_back("skipNotify(FF-T5)", f);
        f = {};
        f.notifyOneOnly = true;
        v.emplace_back("notifyOneOnly(FF-T5)", f);
        f = {};
        f.ifInsteadOfWhile = true;
        v.emplace_back("ifInsteadOfWhile(EF-T5)", f);
        f = {};
        f.skipWaitReceive = true;
        v.emplace_back("skipWaitReceive(FF-T3)", f);
        f = {};
        f.erroneousWaitSend = true;
        v.emplace_back("erroneousWaitSend(EF-T3)", f);
        f = {};
        f.earlyReleaseSend = true;
        v.emplace_back("earlyReleaseSend(EF-T4)", f);
        f = {};
        f.skipSync = true;
        v.emplace_back("skipSync(FF-T1)", f);
        return v;
      }();

  struct Tally {
    const char* name;
    const Suite* suite;
    int kills = 0;
  };
  Tally tallies[3] = {{"branch", &branchSuite, 0},
                      {"branch+loop", &loopSuite, 0},
                      {"CoFG-arc", &cofgSuite, 0}};

  std::printf("%-26s %10s %14s %12s\n", "mutant", "branch", "branch+loop",
              "CoFG-arc");
  for (const auto& [name, faults] : mutants) {
    bool killed[3];
    for (int i = 0; i < 3; ++i) {
      killed[i] = suiteKillsMutant(*tallies[i].suite, faults);
      tallies[i].kills += killed[i] ? 1 : 0;
    }
    std::printf("%-26s %10s %14s %12s\n", name.c_str(),
                killed[0] ? "KILLED" : "-", killed[1] ? "KILLED" : "-",
                killed[2] ? "KILLED" : "-");
  }
  std::printf("%-26s %10d %14d %12d  (of %zu)\n", "total", tallies[0].kills,
              tallies[1].kills, tallies[2].kills, mutants.size());

  const bool monotone = tallies[0].kills <= tallies[1].kills &&
                        tallies[1].kills <= tallies[2].kills;
  const bool cofgAtLeastLoop = tallies[2].kills >= tallies[1].kills;
  std::printf("\nreading: the CoFG criterion subsumes the earlier loop\n"
              "criterion on this component (the wait->wait arc IS the loop\n"
              "iteration), explaining why ref [13]'s loop coverage worked —\n"
              "the justification the paper set out to provide.\n");

  const bool ok = monotone && cofgAtLeastLoop && tallies[2].kills >= 5;
  std::printf("\n%s\n", ok ? "FUTURE-WORK CRITERIA COMPARISON: OK"
                           : "FUTURE-WORK CRITERIA COMPARISON: FAILURES");
  return ok ? 0 : 1;
}
