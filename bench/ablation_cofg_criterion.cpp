// Ablation C: does CoFG arc coverage predict fault detection?
//
// The paper proposes CoFG arc coverage as the test-selection criterion for
// concurrent components but (being a position paper) never measures it.
// This bench generates random ConAn test sequences of varying length for
// the producer-consumer, and for each sequence measures
//   * the CoFG arc coverage it achieves on the correct component
//     (receive + send graphs, 10 arcs total), and
//   * how many of the seven seeded mutants it kills, using differential
//     testing (any deviation from the correct component's call outcomes —
//     values, completion ticks, hangs — kills the mutant).
// Sequences are bucketed by coverage; the kill rate should rise with
// coverage — the paper's justification, made quantitative.
#include <cstdio>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "confail/clock/abstract_clock.hpp"
#include "confail/cofg/cofg.hpp"
#include "confail/cofg/coverage.hpp"
#include "confail/components/producer_consumer.hpp"
#include "confail/conan/test_driver.hpp"
#include "confail/events/trace.hpp"
#include "confail/monitor/runtime.hpp"
#include "confail/sched/virtual_scheduler.hpp"
#include "confail/support/rng.hpp"

namespace cofg = confail::cofg;
namespace ev = confail::events;
namespace sched = confail::sched;
using confail::Xoshiro256;
using confail::clock::AbstractClock;
using confail::components::ProducerConsumer;
using confail::conan::Call;
using confail::conan::TestDriver;
using confail::monitor::Runtime;

namespace {

// One abstract test step: which thread calls what at which tick.
struct Step {
  std::string thread;
  std::uint64_t tick;
  bool isSend;
  std::string payload;  // send only
};

std::vector<Step> randomSequence(Xoshiro256& rng, std::size_t length) {
  std::vector<Step> steps;
  const char* threads[] = {"p", "c1", "c2"};
  std::uint64_t tick = 0;
  for (std::size_t i = 0; i < length; ++i) {
    tick += 1 + rng.below(2);
    Step s;
    s.thread = threads[rng.below(3)];
    s.isSend = rng.chance(0.4);
    if (s.isSend) {
      s.payload = std::string(1 + rng.below(2), 'a' + static_cast<char>(rng.below(4)));
    }
    s.tick = tick;
    steps.push_back(std::move(s));
  }
  return steps;
}

struct Observation {
  bool completed = false;
  std::uint64_t tick = 0;
  std::optional<std::int64_t> value;
  std::string error;
  bool operator==(const Observation&) const = default;
};

struct RunOutput {
  sched::Outcome outcome;
  std::vector<Observation> calls;
  double coverage = 0.0;  // filled for the correct-component run only
};

RunOutput runSequence(const std::vector<Step>& steps,
                      const ProducerConsumer::Faults& faults,
                      bool measureCoverage) {
  ev::Trace trace;
  sched::RoundRobinStrategy strategy;
  sched::VirtualScheduler::Options so;
  so.maxSteps = 30000;
  sched::VirtualScheduler s(strategy, so);
  Runtime rt(trace, s, 7);
  AbstractClock clk(rt);
  TestDriver driver(rt, clk);
  ProducerConsumer pc(rt, faults);

  for (const Step& st : steps) {
    Call c;
    c.thread = st.thread;
    c.startTick = st.tick;
    c.label = st.isSend ? "send" : "receive";
    if (st.isSend) {
      c.action = [&pc, payload = st.payload]() -> std::int64_t {
        pc.send(payload);
        return 0;
      };
    } else {
      c.action = [&pc]() -> std::int64_t { return pc.receive(); };
    }
    driver.add(std::move(c));
  }
  auto res = driver.execute();

  RunOutput out;
  out.outcome = res.run.outcome;
  for (const auto& r : res.reports) {
    Observation o;
    o.completed = r.completed;
    o.tick = r.completedAtTick;
    o.value = r.value;
    o.error = r.error;
    out.calls.push_back(std::move(o));
  }
  if (measureCoverage) {
    cofg::Cofg rGraph = cofg::Cofg::build(ProducerConsumer::receiveModel());
    cofg::Cofg sGraph = cofg::Cofg::build(ProducerConsumer::sendModel());
    cofg::CoverageTracker rCov(rGraph, pc.receiveMethodId());
    cofg::CoverageTracker sCov(sGraph, pc.sendMethodId());
    auto events = trace.events();
    rCov.process(events);
    sCov.process(events);
    out.coverage =
        static_cast<double>(rCov.coveredArcs() + sCov.coveredArcs()) /
        static_cast<double>(rCov.totalArcs() + sCov.totalArcs());
  }
  return out;
}

}  // namespace

int main() {
  std::printf("=== Ablation C: CoFG coverage vs mutants killed ===\n\n");

  const std::vector<std::pair<std::string, ProducerConsumer::Faults>> mutants = [] {
    std::vector<std::pair<std::string, ProducerConsumer::Faults>> v;
    ProducerConsumer::Faults f;
    f.skipNotify = true;
    v.emplace_back("skipNotify", f);
    f = {};
    f.notifyOneOnly = true;
    v.emplace_back("notifyOneOnly", f);
    f = {};
    f.ifInsteadOfWhile = true;
    v.emplace_back("ifInsteadOfWhile", f);
    f = {};
    f.skipWaitReceive = true;
    v.emplace_back("skipWaitReceive", f);
    f = {};
    f.erroneousWaitSend = true;
    v.emplace_back("erroneousWaitSend", f);
    f = {};
    f.earlyReleaseSend = true;
    v.emplace_back("earlyReleaseSend", f);
    f = {};
    f.skipSync = true;
    v.emplace_back("skipSync", f);
    return v;
  }();

  struct Bucket {
    int sequences = 0;
    double killSum = 0.0;
  };
  std::map<int, Bucket> byCoverage;  // key: coverage decile (0..10)
  std::map<std::string, int> killsPerMutant;

  Xoshiro256 rng(20030422);  // IPPS'03 vintage seed
  const int kSequences = 60;
  for (int i = 0; i < kSequences; ++i) {
    std::size_t length = 2 + static_cast<std::size_t>(rng.below(9));
    auto steps = randomSequence(rng, length);
    RunOutput golden = runSequence(steps, ProducerConsumer::Faults(), true);

    int kills = 0;
    for (const auto& [name, faults] : mutants) {
      RunOutput got = runSequence(steps, faults, false);
      bool killed = got.outcome != golden.outcome || got.calls != golden.calls;
      if (killed) {
        ++kills;
        ++killsPerMutant[name];
      }
    }
    int decile = static_cast<int>(golden.coverage * 10.0 + 0.5);
    byCoverage[decile].sequences += 1;
    byCoverage[decile].killSum +=
        static_cast<double>(kills) / static_cast<double>(mutants.size());
  }

  confail::benchjson::Writer json;
  json.beginObject();
  json.field("bench", "ablation_cofg_criterion");
  json.field("sequences", kSequences);
  json.field("mutants", static_cast<std::uint64_t>(mutants.size()));

  std::printf("%-18s %10s %16s\n", "arc coverage", "sequences",
              "avg mutants killed");
  double lowCovKill = -1.0, highCovKill = -1.0;
  json.key("by_coverage_decile");
  json.beginArray();
  for (const auto& [decile, b] : byCoverage) {
    double avg = b.killSum / b.sequences;
    std::printf("%9d0%%        %10d %15.0f%%\n", decile, b.sequences,
                avg * 100.0);
    json.beginObject();
    json.field("coverage_pct", decile * 10);
    json.field("sequences", b.sequences);
    json.field("avg_kill_rate", avg);
    json.endObject();
    if (lowCovKill < 0) lowCovKill = avg;
    highCovKill = avg;
  }
  json.endArray();

  std::printf("\nper-mutant kills over %d random sequences:\n", kSequences);
  json.key("kills_per_mutant");
  json.beginObject();
  for (const auto& [name, kills] : killsPerMutant) {
    std::printf("  %-20s %d\n", name.c_str(), kills);
    json.field(name, kills);
  }
  json.endObject();

  const bool rises = highCovKill > lowCovKill;
  json.field("low_coverage_kill_rate", lowCovKill);
  json.field("high_coverage_kill_rate", highCovKill);
  json.field("kill_rate_rises_with_coverage", rises);
  json.field("ok", rises);
  json.endObject();

  std::printf("\nreading: higher CoFG arc coverage -> more mutants killed\n"
              "(%s), supporting the paper's criterion.\n",
              rises ? "confirmed on this run" : "NOT observed on this run");
  if (json.writeFile("BENCH_ablation_cofg.json")) {
    std::printf("\nwrote BENCH_ablation_cofg.json\n");
  } else {
    std::printf("\nFAIL: could not write BENCH_ablation_cofg.json\n");
    return 1;
  }
  std::printf("\n%s\n", rises ? "ABLATION C: OK" : "ABLATION C: FAILURES");
  return rises ? 0 : 1;
}
