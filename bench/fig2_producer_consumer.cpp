// Figure 2 reproduction: the asymmetric producer-consumer monitor.
//
// Three progressively stronger checks:
//   1. Brinch Hansen-style deterministic test (Section 6 step 2): a
//      scripted sequence of send/receive calls with exact completion ticks
//      and values, driven by the abstract clock.
//   2. Stress under random schedules (P producers x C consumers of the
//      asymmetric monitor): every string is received intact, in order.
//   3. Model conformance: the stress trace replays through the Figure 1
//      Petri net, and throughput of the substrate is reported in both
//      virtual and real mode.
#include <chrono>
#include <cstdio>
#include <string>

#include "confail/clock/abstract_clock.hpp"
#include "confail/components/producer_consumer.hpp"
#include "confail/conan/test_driver.hpp"
#include "confail/events/trace.hpp"
#include "confail/monitor/runtime.hpp"
#include "confail/petri/trace_validator.hpp"
#include "confail/sched/virtual_scheduler.hpp"

namespace ev = confail::events;
namespace sched = confail::sched;
using confail::clock::AbstractClock;
using confail::components::ProducerConsumer;
using confail::conan::Call;
using confail::conan::TestDriver;
using confail::monitor::Runtime;

namespace {
int failures = 0;
void check(bool ok, const std::string& what) {
  std::printf("  [%s] %s\n", ok ? "ok" : "FAIL", what.c_str());
  if (!ok) ++failures;
}
}  // namespace

int main() {
  std::printf("=== Figure 2: producer-consumer monitor ===\n\n");

  std::printf("--- deterministic ConAn sequence (Section 6) ---\n");
  {
    ev::Trace trace;
    sched::RoundRobinStrategy strategy;
    sched::VirtualScheduler s(strategy);
    Runtime rt(trace, s, 1);
    AbstractClock clk(rt);
    TestDriver driver(rt, clk);
    ProducerConsumer pc(rt);

    auto receive = [&pc](std::string thread, std::uint64_t at, char expect,
                         std::uint64_t doneLo, std::uint64_t doneHi,
                         bool waits) {
      Call c;
      c.thread = std::move(thread);
      c.startTick = at;
      c.label = std::string("receive()->") + expect;
      c.action = [&pc]() -> std::int64_t { return pc.receive(); };
      c.completionWindow = {{doneLo, doneHi}};
      c.expectedValue = expect;
      c.expectWait = waits;
      return c;
    };

    // Consumer arrives early and suspends (T3); producer sends "hi" at
    // tick 3, waking it (T5,T2); the rest drains without waiting; the
    // second send must itself wait until the buffer drains.
    driver.add(receive("consumer", 1, 'h', 3, 3, true));
    driver.addVoid("producer", 3, "send(hi)", [&pc] { pc.send("hi"); },
                   {{3, 3}});
    driver.add(receive("consumer", 4, 'i', 4, 4, false));
    driver.addVoid("producer", 5, "send(ok)", [&pc] { pc.send("ok"); },
                   {{5, 5}});
    driver.add(receive("consumer", 6, 'o', 6, 6, false));
    driver.add(receive("consumer", 7, 'k', 7, 7, false));

    auto res = driver.execute();
    for (const auto& r : res.reports) {
      std::printf("    %s\n", r.describe().c_str());
    }
    check(res.run.outcome == sched::Outcome::Completed,
          "scheduler run completed");
    check(res.allPassed(), "all scripted calls at the predicted tick/value");
  }

  std::printf("\n--- stress: random schedules, message integrity ---\n");
  {
    bool allIntact = true;
    std::uint64_t totalEvents = 0;
    for (std::uint64_t seed = 1; seed <= 10; ++seed) {
      ev::Trace trace;
      sched::RandomWalkStrategy strategy(seed);
      sched::VirtualScheduler s(strategy);
      Runtime rt(trace, s, seed);
      ProducerConsumer pc(rt);
      std::string received;
      std::string sent;
      rt.spawn("producer", [&] {
        for (int m = 0; m < 8; ++m) {
          std::string msg = "m" + std::to_string(m) + "!";
          sent += msg;
          pc.send(msg);
        }
      });
      rt.spawn("consumer", [&] {
        for (int i = 0; i < 8 * 3; ++i) received.push_back(pc.receive());
      });
      auto run = s.run();
      allIntact = allIntact && run.ok() && received == sent;
      totalEvents += trace.size();
      if (seed == 1) {
        auto v = confail::petri::validateTraceAgainstModel(trace, pc.mon().id());
        check(v.ok, "stress trace conforms to the Figure 1 model (" +
                        std::to_string(v.eventsChecked) + " transitions)");
      }
    }
    check(allIntact, "10 seeds x 8 messages: every string received intact");
    std::printf("    (%llu instrumented events recorded)\n",
                static_cast<unsigned long long>(totalEvents));
  }

  std::printf("\n--- throughput: virtual vs real mode ---\n");
  {
    using Clock = std::chrono::steady_clock;
    constexpr int kMessages = 2000;

    auto t0 = Clock::now();
    {
      ev::Trace trace;
      sched::RoundRobinStrategy strategy;
      sched::VirtualScheduler::Options so;
      so.maxSteps = 10u << 20;
      sched::VirtualScheduler s(strategy, so);
      Runtime rt(trace, s, 1);
      ProducerConsumer pc(rt);
      rt.spawn("producer", [&] {
        for (int m = 0; m < kMessages; ++m) pc.send("x");
      });
      rt.spawn("consumer", [&] {
        for (int i = 0; i < kMessages; ++i) (void)pc.receive();
      });
      check(s.run().ok(), "virtual-mode bulk transfer completed");
    }
    auto t1 = Clock::now();
    {
      ev::Trace trace;
      Runtime rt(trace, 1);
      ProducerConsumer pc(rt);
      rt.spawn("producer", [&] {
        for (int m = 0; m < kMessages; ++m) pc.send("x");
      });
      rt.spawn("consumer", [&] {
        for (int i = 0; i < kMessages; ++i) (void)pc.receive();
      });
      rt.joinAll();
      check(true, "real-mode bulk transfer completed");
    }
    auto t2 = Clock::now();
    auto us = [](auto d) {
      return std::chrono::duration_cast<std::chrono::microseconds>(d).count();
    };
    std::printf("    virtual mode: %lld us for %d messages (%.2f us/msg)\n",
                static_cast<long long>(us(t1 - t0)), kMessages,
                static_cast<double>(us(t1 - t0)) / kMessages);
    std::printf("    real mode:    %lld us for %d messages (%.2f us/msg)\n",
                static_cast<long long>(us(t2 - t1)), kMessages,
                static_cast<double>(us(t2 - t1)) / kMessages);
  }

  std::printf("\n%s\n", failures == 0 ? "FIGURE 2 REPRODUCTION: OK"
                                      : "FIGURE 2 REPRODUCTION: FAILURES");
  return failures == 0 ? 0 : 1;
}
