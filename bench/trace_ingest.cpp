// Streaming ingest throughput: the cost of each stage of the online
// analysis path, emitted as BENCH_ingest.json.
//
// Three figures:
//
//   1. Ring transport — raw SPSC handoff of events::Event records between
//      a producer and a consumer thread through the fixed-capacity ring.
//      This is the budget ceiling for everything downstream; the bench
//      gates on >= 1M events/sec and zero drops at steady state (the
//      backpressure path must never lose events).
//
//   2. Decode — JsonlDecoder over a multi-MB synthetic JSONL stream
//      (bytes/sec and events/sec, no detector work).
//
//   3. End-to-end pipeline — the same stream through IngestPipeline:
//      reader thread, ring, full streaming battery, ReportSink.  The
//      steady-state drop count must be zero (default backpressure mode).
//
// `--smoke` shrinks the event counts so the binary finishes in a couple of
// seconds; the bench_smoke ctest entry runs that mode and the committed
// BENCH_ingest.json comes from the same invocation.  The 1M events/sec
// gate is skipped under ThreadSanitizer (the ~70x interception cost is
// TSan's, not the ring's).
#include <chrono>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <string>
#include <thread>

#include "bench_json.hpp"
#include "confail/detect/report_sink.hpp"
#include "confail/events/trace.hpp"
#include "confail/ingest/decode.hpp"
#include "confail/ingest/pipeline.hpp"
#include "confail/ingest/ring.hpp"
#include "confail/obs/trace_export.hpp"

namespace events = confail::events;
namespace ingest = confail::ingest;

namespace {

#if defined(__SANITIZE_THREAD__)
constexpr bool kSanitized = true;
#else
constexpr bool kSanitized = false;
#endif

double secondsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// A steady-state monitor workload: three threads cycling
/// request/acquire/write/read/release over two monitors and two variables.
events::Trace syntheticTrace(int iters) {
  events::Trace trace;
  trace.nameMonitor(0, "shared");
  trace.nameMonitor(1, "other");
  trace.nameVar(0, "counter");
  trace.nameVar(1, "flag");
  for (std::uint32_t t = 0; t < 3; ++t) {
    trace.nameThread(t, "worker" + std::to_string(t));
  }
  for (int i = 0; i < iters; ++i) {
    events::Event e;
    e.thread = static_cast<std::uint32_t>(i % 3);
    e.monitor = i % 2 == 0 ? 0 : 1;
    e.kind = events::EventKind::LockRequest;
    trace.record(e);
    e.kind = events::EventKind::LockAcquire;
    trace.record(e);
    e.kind = events::EventKind::Write;
    e.monitor = events::kNoMonitor;
    e.aux = i % 2 == 0 ? 0 : 1;
    trace.record(e);
    e.kind = events::EventKind::Read;
    trace.record(e);
    e.kind = events::EventKind::LockRelease;
    e.monitor = i % 2 == 0 ? 0 : 1;
    e.aux = 0;
    trace.record(e);
  }
  return trace;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  bool ok = true;

  std::printf("=== Streaming ingest throughput (%s mode) ===\n\n",
              smoke ? "smoke" : "full");

  confail::benchjson::Writer json;
  json.beginObject();
  json.field("bench", "trace_ingest");
  json.field("smoke", smoke);
  json.field("tsan", kSanitized);

  // ---- 1. ring transport ---------------------------------------------------
  {
    const std::uint64_t n = smoke ? 2'000'000 : 20'000'000;
    ingest::SpscRing<events::Event> ring(1 << 16);
    events::Event proto;
    proto.thread = 1;
    proto.kind = events::EventKind::Write;
    proto.aux = 7;
    const auto t0 = std::chrono::steady_clock::now();
    std::thread producer([&] {
      for (std::uint64_t i = 0; i < n; ++i) {
        events::Event e = proto;
        e.seq = i;
        while (!ring.tryPush(e)) {
          std::this_thread::yield();
        }
      }
    });
    std::uint64_t popped = 0;
    events::Event out;
    while (popped < n) {
      if (ring.tryPop(out)) {
        ++popped;
      }
    }
    producer.join();
    const double sec = secondsSince(t0);
    const double eps = sec > 0.0 ? static_cast<double>(n) / sec : 0.0;
    std::printf("ring transport: %llu events in %.2fs (%.2fM events/sec, "
                "%llu drops)\n",
                static_cast<unsigned long long>(n), sec, eps / 1e6,
                static_cast<unsigned long long>(ring.drops()));
    if (ring.drops() != 0) {
      std::printf("FAIL: backpressure transport dropped events\n");
      ok = false;
    }
    if (!kSanitized && eps < 1e6) {
      std::printf("FAIL: ring transport below 1M events/sec\n");
      ok = false;
    }
    json.key("ring_transport");
    json.beginObject();
    json.field("events", n);
    json.field("seconds", sec);
    json.field("events_per_sec", eps);
    json.field("drops", ring.drops());
    json.field("ring_capacity", static_cast<std::uint64_t>(ring.capacity()));
    json.endObject();
  }

  // ---- 2. decode -----------------------------------------------------------
  const events::Trace trace = syntheticTrace(smoke ? 40'000 : 400'000);
  const std::string jsonl = confail::obs::toJsonl(trace);
  {
    ingest::JsonlDecoder dec;
    std::uint64_t decoded = 0;
    const auto t0 = std::chrono::steady_clock::now();
    dec.feed(jsonl, [&](const events::Event&) { ++decoded; });
    dec.flush([&](const events::Event&) { ++decoded; });
    const double sec = secondsSince(t0);
    const double eps = sec > 0.0 ? static_cast<double>(decoded) / sec : 0.0;
    const double mbps =
        sec > 0.0 ? static_cast<double>(jsonl.size()) / sec / 1e6 : 0.0;
    std::printf("decode: %.1f MB, %llu events in %.2fs (%.1f MB/sec, "
                "%.2fM events/sec)\n",
                static_cast<double>(jsonl.size()) / 1e6,
                static_cast<unsigned long long>(decoded), sec, mbps,
                eps / 1e6);
    if (decoded != trace.size() || dec.stats().malformed != 0) {
      std::printf("FAIL: decode lost or misread events\n");
      ok = false;
    }
    json.key("decode");
    json.beginObject();
    json.field("bytes", static_cast<std::uint64_t>(jsonl.size()));
    json.field("events", decoded);
    json.field("seconds", sec);
    json.field("events_per_sec", eps);
    json.field("mb_per_sec", mbps);
    json.endObject();
  }

  // ---- 3. end-to-end pipeline ----------------------------------------------
  {
    ingest::IngestPipeline pipe{ingest::IngestOptions{}};
    confail::detect::ReportSink sink;
    sink.setSource("bench");
    std::istringstream in(jsonl);
    const ingest::IngestStats st = pipe.run(in, sink);
    std::printf("pipeline: %llu events in %.2fs (%.2fM events/sec, "
                "%llu findings, %llu drops)\n",
                static_cast<unsigned long long>(st.eventsAnalyzed),
                st.elapsedSec, st.eventsPerSec / 1e6,
                static_cast<unsigned long long>(st.findings),
                static_cast<unsigned long long>(st.ringDrops));
    if (st.eventsAnalyzed != trace.size() || st.ringDrops != 0 ||
        st.malformed != 0 || st.truncated != 0) {
      std::printf("FAIL: pipeline lost events at steady state\n");
      ok = false;
    }
    json.key("pipeline");
    json.beginObject();
    json.field("events", st.eventsAnalyzed);
    json.field("seconds", st.elapsedSec);
    json.field("events_per_sec", st.eventsPerSec);
    json.field("findings", st.findings);
    json.field("drops", st.ringDrops);
    json.endObject();
  }

  json.endObject();
  if (!json.writeFile("BENCH_ingest.json")) {
    std::printf("FAIL: could not write BENCH_ingest.json\n");
    ok = false;
  } else {
    std::printf("\nwrote BENCH_ingest.json\n");
  }

  std::printf("\n%s\n", ok ? "TRACE INGEST: OK" : "TRACE INGEST: FAILURES");
  return ok ? 0 : 1;
}
