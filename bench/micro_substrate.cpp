// Ablation B: micro-costs of the substrate (google-benchmark).
//
// Quantifies what each layer of instrumentation costs:
//   * monitor lock/unlock and wait/notify round-trips, real vs virtual mode
//   * trace event recording
//   * schedule-point overhead of the virtual scheduler (context handoff)
//   * lockset / vector-clock per-access analysis cost
//   * Petri-net firing and reachability throughput
#include <benchmark/benchmark.h>

#include <memory>

#include "confail/components/producer_consumer.hpp"
#include "confail/detect/hb_detector.hpp"
#include "confail/detect/lockset.hpp"
#include "confail/events/trace.hpp"
#include "confail/monitor/monitor.hpp"
#include "confail/monitor/runtime.hpp"
#include "confail/monitor/shared_var.hpp"
#include "confail/petri/reachability.hpp"
#include "confail/petri/thread_lock_net.hpp"
#include "confail/sched/virtual_scheduler.hpp"

namespace ev = confail::events;
namespace sched = confail::sched;
using confail::monitor::Monitor;
using confail::monitor::Runtime;
using confail::monitor::Synchronized;

// ---------------------------------------------------------------------------

static void BM_TraceRecord(benchmark::State& state) {
  ev::Trace trace;
  ev::Event e;
  e.kind = ev::EventKind::Read;
  for (auto _ : state) {
    benchmark::DoNotOptimize(trace.record(e));
    if (trace.size() > 1u << 20) {
      state.PauseTiming();
      trace.clear();
      state.ResumeTiming();
    }
  }
}
BENCHMARK(BM_TraceRecord);

static void BM_RealMonitorLockUnlock(benchmark::State& state) {
  ev::Trace trace;
  Runtime rt(trace, 1);
  Monitor m(rt, "m");
  for (auto _ : state) {
    Synchronized sync(m);
    benchmark::ClobberMemory();
    if (trace.size() > 1u << 20) {
      state.PauseTiming();
      trace.clear();
      state.ResumeTiming();
    }
  }
}
BENCHMARK(BM_RealMonitorLockUnlock);

static void BM_RealMonitorContended(benchmark::State& state) {
  // Measures an uncontended baseline per iteration with contention supplied
  // by sibling benchmark threads.
  static ev::Trace trace;
  static Runtime rt(trace, 1);
  static Monitor m(rt, "m");
  for (auto _ : state) {
    Synchronized sync(m);
    benchmark::ClobberMemory();
  }
  if (state.thread_index() == 0) trace.clear();
}
BENCHMARK(BM_RealMonitorContended)->Threads(4)->UseRealTime();

static void BM_VirtualSchedulerHandoff(benchmark::State& state) {
  // Cost of one schedule point (two semaphore hops) in the virtual mode,
  // measured by running a fixed-size yield loop per iteration batch.
  const int kYields = 1000;
  for (auto _ : state) {
    sched::RoundRobinStrategy strategy;
    sched::VirtualScheduler::Options so;
    so.maxSteps = 1u << 22;
    sched::VirtualScheduler s(strategy, so);
    s.spawn("spinner", [&s] {
      for (int i = 0; i < kYields; ++i) s.yield();
    });
    auto r = s.run();
    benchmark::DoNotOptimize(r.steps);
  }
  state.SetItemsProcessed(state.iterations() * kYields);
}
BENCHMARK(BM_VirtualSchedulerHandoff);

static void BM_VirtualProducerConsumerMessage(benchmark::State& state) {
  const int kMessages = 200;
  for (auto _ : state) {
    ev::Trace trace;
    sched::RoundRobinStrategy strategy;
    sched::VirtualScheduler::Options so;
    so.maxSteps = 1u << 22;
    sched::VirtualScheduler s(strategy, so);
    Runtime rt(trace, s, 1);
    confail::components::ProducerConsumer pc(rt);
    rt.spawn("p", [&pc] {
      for (int i = 0; i < kMessages; ++i) pc.send("x");
    });
    rt.spawn("c", [&pc] {
      for (int i = 0; i < kMessages; ++i) (void)pc.receive();
    });
    auto r = s.run();
    benchmark::DoNotOptimize(r.steps);
  }
  state.SetItemsProcessed(state.iterations() * kMessages);
}
BENCHMARK(BM_VirtualProducerConsumerMessage);

// ---------------------------------------------------------------------------
// Detector throughput over a synthetic trace of N events.

namespace {
ev::Trace makeAccessTrace(std::size_t events) {
  ev::Trace t;
  for (std::size_t i = 0; i < events; ++i) {
    ev::Event e;
    e.thread = static_cast<ev::ThreadId>(i % 4);
    switch (i % 4) {
      case 0: e.kind = ev::EventKind::LockAcquire; e.monitor = 0; break;
      case 1: e.kind = ev::EventKind::Read; e.aux = i % 16; break;
      case 2: e.kind = ev::EventKind::Write; e.aux = i % 16; break;
      default: e.kind = ev::EventKind::LockRelease; e.monitor = 0; break;
    }
    t.record(e);
  }
  return t;
}
}  // namespace

static void BM_LocksetAnalysis(benchmark::State& state) {
  ev::Trace trace = makeAccessTrace(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    confail::detect::LocksetDetector d;
    benchmark::DoNotOptimize(d.analyze(trace));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_LocksetAnalysis)->Arg(1000)->Arg(10000)->Arg(100000);

static void BM_HappensBeforeAnalysis(benchmark::State& state) {
  ev::Trace trace = makeAccessTrace(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    confail::detect::HbDetector d;
    benchmark::DoNotOptimize(d.analyze(trace));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_HappensBeforeAnalysis)->Arg(1000)->Arg(10000)->Arg(100000);

// ---------------------------------------------------------------------------
// Petri engine.

static void BM_PetriFire(benchmark::State& state) {
  auto tl = confail::petri::buildThreadLockNet(4, confail::petri::NotifyModel::Free);
  confail::petri::Marking m = tl.initial;
  for (auto _ : state) {
    // T1_0, T2_0, T4_0 cycle for thread 0.
    m = tl.net.fire(tl.T1[0][0], m);
    m = tl.net.fire(tl.T2[0][0], m);
    m = tl.net.fire(tl.T4[0][0], m);
    benchmark::DoNotOptimize(m);
  }
  state.SetItemsProcessed(state.iterations() * 3);
}
BENCHMARK(BM_PetriFire);

static void BM_PetriReachability(benchmark::State& state) {
  const unsigned threads = static_cast<unsigned>(state.range(0));
  auto tl = confail::petri::buildThreadLockNet(threads, confail::petri::NotifyModel::Free);
  for (auto _ : state) {
    auto r = confail::petri::reachable(tl.net, tl.initial);
    benchmark::DoNotOptimize(r.stateCount());
  }
}
BENCHMARK(BM_PetriReachability)->Arg(2)->Arg(4)->Arg(6)->Arg(8);

BENCHMARK_MAIN();
