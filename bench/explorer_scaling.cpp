// Explorer throughput: worker scaling, fingerprint pruning, and the
// reduction ladder (none / sleep sets / source-set DPOR).
//
// Three questions, measured on the canonical scenarios
// (components/scenarios.hpp) and emitted as BENCH_explorer.json:
//
//   1. Scaling — how does runs/sec grow with worker threads?  The same
//      exhaustible FF-T5 tree is explored at 1, 2, 4 and 8 workers
//      (reductions off, so every row executes the identical run set) and
//      each row reports runs/sec and speedup vs the serial row.  The >= 3x
//      at 8 workers acceptance bar is asserted only when the host actually
//      has >= 8 hardware threads — on smaller machines the numbers are
//      reported as measured.
//
//   2. Pruning — how much of the Figure-2 tree does (depth, fingerprint)
//      dedup remove, and does the FF-T5 companion still find the same set
//      of distinct deadlock states?  The >= 30% reduction bar is asserted
//      in full mode (measured: ~95%+ on both trees).
//
//   3. Reductions — the Figure-2 tree at branch depth 6 under each
//      Reduction level, at 1/2/8 workers.  DPOR must explore at most 50%
//      of the sleep-set run count (measured: ~12%), with run counts
//      identical across worker counts, and it must preserve the distinct
//      deadlock-state set of full enumeration on a deadlocking companion
//      scenario.  This section runs full-size even under --smoke: the
//      whole ladder is ~5k runs.
//
//   4. Incremental vs replay — with DPOR collapsing the run count, per-run
//      cost is dominated by prefix replay; copy-on-write branch snapshots
//      (Options::incremental) must deliver >= 2x runs/sec on the FF-T5
//      tree at branch depth 8 with identical observables.  Asserted in
//      full mode on fiber-capable hosts only.
//
// Speedup rows are only committed when the host has at least as many
// hardware threads as the row has workers; otherwise the row carries an
// explicit "skipped_reason" instead of a timesharing artifact.
//
// `--smoke` shrinks the scaling/pruning trees so the whole binary finishes
// in a couple of seconds; the bench_smoke ctest entry runs that mode.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "bench_json.hpp"
#include "confail/components/scenarios.hpp"
#include "confail/sched/explorer.hpp"
#include "confail/sched/virtual_scheduler.hpp"

namespace sched = confail::sched;
namespace scenarios = confail::components::scenarios;

namespace {

using Scenario = void (*)(sched::VirtualScheduler&);

std::uint64_t deadlockSignature(const sched::RunResult& r) {
  std::uint64_t h = sched::kFpSeed;
  for (const sched::BlockedThreadInfo& b : r.blocked) {
    h = sched::fpMix(h, (static_cast<std::uint64_t>(b.id) << 32) ^
                            static_cast<std::uint64_t>(b.kind));
    h = sched::fpMix(h, b.resource);
  }
  return h;
}

struct Measured {
  sched::ExhaustiveExplorer::Stats stats;
  std::set<std::uint64_t> deadlockSigs;
  double ms = 0.0;
};

using Reduction = sched::ExhaustiveExplorer::Reduction;

Measured run(Scenario scenario, std::size_t workers, std::size_t branchDepth,
             bool prune, Reduction reduction = Reduction::None,
             bool incremental = true) {
  sched::ExhaustiveExplorer::Options eo;
  eo.maxRuns = 2000000;
  eo.maxSteps = 20000;
  eo.maxBranchDepth = branchDepth;
  eo.workers = workers;
  eo.fingerprintPruning = prune;
  eo.reduction = reduction;
  eo.incremental = incremental;
  sched::ExhaustiveExplorer explorer(eo);
  Measured m;
  const auto t0 = std::chrono::steady_clock::now();
  m.stats = explorer.explore(
      scenario, [&m](const std::vector<sched::ThreadId>&,
                     const sched::RunResult& r) {
        if (r.outcome == sched::Outcome::Deadlock) {
          m.deadlockSigs.insert(deadlockSignature(r));
        }
        return true;
      });
  const auto t1 = std::chrono::steady_clock::now();
  m.ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  return m;
}

double pct(std::uint64_t part, std::uint64_t whole) {
  return whole == 0 ? 0.0
                    : 100.0 * static_cast<double>(part) /
                          static_cast<double>(whole);
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  const unsigned hw = std::thread::hardware_concurrency();
  bool ok = true;

  std::printf("=== Explorer scaling & pruning (%s mode, %u hw threads) ===\n\n",
              smoke ? "smoke" : "full", hw);

  confail::benchjson::Writer json;
  json.beginObject();
  json.field("bench", "explorer_scaling");
  json.field("smoke", smoke);
  json.field("hardware_concurrency", static_cast<std::uint64_t>(hw));

  // ---- 1. worker scaling on a fixed exhaustible tree ----------------------
  // Smoke: the tiny lock-order tree.  Full: the single-item FF-T5 tree,
  // branch-bounded to depth 8 (~26k runs serial).
  const Scenario scaleScenario =
      smoke ? static_cast<Scenario>(scenarios::lockOrder)
            : static_cast<Scenario>(scenarios::ffT5Small);
  const std::size_t scaleDepth =
      smoke ? static_cast<std::size_t>(-1) : 8;
  const char* scaleName = smoke ? "lock_order" : "ff_t5_small";

  std::printf("scaling scenario: %s\n", scaleName);
  std::printf("%8s %10s %10s %12s %10s\n", "workers", "runs", "ms",
              "runs/sec", "speedup");

  json.key("scaling");
  json.beginObject();
  json.field("scenario", scaleName);
  json.key("rows");
  json.beginArray();

  double serialMs = 0.0;
  double speedupAt8 = 0.0;
  std::uint64_t serialRuns = 0;
  for (std::size_t workers : {1u, 2u, 4u, 8u}) {
    Measured m = run(scaleScenario, workers, scaleDepth, /*prune=*/false);
    if (workers == 1) {
      serialMs = m.ms;
      serialRuns = m.stats.runs;
    }
    ok = ok && m.stats.exhausted && m.stats.runs == serialRuns;
    const double rps = m.ms > 0.0 ? 1000.0 * static_cast<double>(m.stats.runs) / m.ms : 0.0;
    // A speedup number is only meaningful when the host can actually run
    // the workers in parallel; on smaller machines the rows timeshare one
    // another and a "0.84x speedup" is measurement noise dressed up as a
    // result.  Such rows record an explicit skip reason instead.
    const bool speedupMeaningful = hw >= workers;
    const double speedup = m.ms > 0.0 ? serialMs / m.ms : 0.0;
    if (workers == 8) speedupAt8 = speedup;
    if (speedupMeaningful) {
      std::printf("%8zu %10llu %10.1f %12.1f %9.2fx\n", workers,
                  static_cast<unsigned long long>(m.stats.runs), m.ms, rps,
                  speedup);
    } else {
      std::printf("%8zu %10llu %10.1f %12.1f %10s\n", workers,
                  static_cast<unsigned long long>(m.stats.runs), m.ms, rps,
                  "(skipped)");
    }
    json.beginObject();
    json.field("workers", workers);
    json.field("hardware_concurrency", static_cast<std::uint64_t>(hw));
    json.field("runs", m.stats.runs);
    json.field("ms", m.ms);
    json.field("runs_per_sec", rps);
    if (speedupMeaningful) {
      json.field("speedup_vs_serial", speedup);
    } else {
      json.field("skipped_reason",
                 "host has " + std::to_string(hw) +
                     " hardware threads < " + std::to_string(workers) +
                     " workers: speedup would be timesharing noise");
    }
    json.endObject();
  }
  json.endArray();
  json.endObject();

  const bool gateSpeedup = !smoke && hw >= 8;
  if (gateSpeedup && speedupAt8 < 3.0) {
    std::printf("FAIL: speedup at 8 workers %.2fx < 3x on a %u-thread host\n",
                speedupAt8, hw);
    ok = false;
  } else if (!gateSpeedup) {
    std::printf("(speedup bar not asserted: %s)\n",
                smoke ? "smoke mode" : "host has < 8 hardware threads");
  }

  // ---- 2. fingerprint pruning: reduction + deadlock-set preservation ------
  // Figure-2 (deadlock-free within the bound) measures the reduction; the
  // FF-T5 companion checks the distinct-deadlock-state set is unchanged.
  const std::size_t fig2Depth = smoke ? 4 : 6;
  Measured fig2Plain = run(scenarios::figure2, 1, fig2Depth, false);
  Measured fig2Pruned = run(scenarios::figure2, 1, fig2Depth, true);
  const double reduction =
      100.0 - pct(fig2Pruned.stats.runs, fig2Plain.stats.runs);

  const Scenario dlScenario =
      smoke ? static_cast<Scenario>(scenarios::lockOrder)
            : static_cast<Scenario>(scenarios::ffT5Small);
  const std::size_t dlDepth = smoke ? static_cast<std::size_t>(-1) : 8;
  const char* dlName = smoke ? "lock_order" : "ff_t5_small";
  Measured dlPlain = run(dlScenario, 1, dlDepth, false);
  Measured dlPruned = run(dlScenario, 1, dlDepth, true);
  const bool setsEqual = dlPlain.deadlockSigs == dlPruned.deadlockSigs &&
                         !dlPlain.deadlockSigs.empty();

  std::printf("\npruning (figure2, depth %zu): %llu -> %llu runs "
              "(%.1f%% reduction), %llu states deduped\n",
              fig2Depth,
              static_cast<unsigned long long>(fig2Plain.stats.runs),
              static_cast<unsigned long long>(fig2Pruned.stats.runs),
              reduction,
              static_cast<unsigned long long>(fig2Pruned.stats.dedupedStates));
  std::printf("deadlock set (%s): %zu distinct state(s), %s under pruning\n",
              dlName, dlPlain.deadlockSigs.size(),
              setsEqual ? "preserved" : "CHANGED");

  json.key("pruning");
  json.beginObject();
  json.field("scenario", "figure2");
  json.field("branch_depth", fig2Depth);
  json.field("runs_unpruned", fig2Plain.stats.runs);
  json.field("runs_pruned", fig2Pruned.stats.runs);
  json.field("reduction_pct", reduction);
  json.field("deduped_states", fig2Pruned.stats.dedupedStates);
  json.field("pruned_branches", fig2Pruned.stats.prunedBranches);
  json.field("deadlock_scenario", dlName);
  json.field("deadlock_states", dlPlain.deadlockSigs.size());
  json.field("deadlock_sets_equal", setsEqual);
  json.endObject();

  ok = ok && fig2Plain.stats.exhausted && fig2Pruned.stats.exhausted &&
       setsEqual && reduction >= 30.0;
  if (reduction < 30.0) {
    std::printf("FAIL: pruning reduction %.1f%% < 30%%\n", reduction);
  }

  // ---- 3. reduction ladder: none vs sleep sets vs source-set DPOR ---------
  // Full-size in both modes (the ladder is small): Figure-2 at branch
  // depth 6, every reduction level at 1/2/8 workers.
  const std::size_t redDepth = 6;
  struct Level {
    const char* name;
    Reduction reduction;
  };
  const Level levels[] = {{"none", Reduction::None},
                          {"sleep", Reduction::Sleep},
                          {"dpor", Reduction::Dpor}};

  std::printf("\nreductions (figure2, depth %zu):\n", redDepth);
  std::printf("%8s %8s %10s %10s %12s\n", "level", "workers", "runs", "ms",
              "backtracks");

  json.key("reductions");
  json.beginObject();
  json.field("scenario", "figure2");
  json.field("branch_depth", redDepth);
  json.key("rows");
  json.beginArray();

  std::uint64_t runsByLevel[3] = {0, 0, 0};
  double serialMsByLevel[3] = {0.0, 0.0, 0.0};
  for (std::size_t li = 0; li < 3; ++li) {
    for (std::size_t workers : {1u, 2u, 8u}) {
      Measured m =
          run(scenarios::figure2, workers, redDepth, /*prune=*/false,
              levels[li].reduction);
      if (workers == 1) {
        runsByLevel[li] = m.stats.runs;
        serialMsByLevel[li] = m.ms;
      }
      // Run counts must be a function of the scenario, not of scheduling
      // luck: the prefix tree's atomic claim masks make every worker count
      // explore the identical frontier.
      ok = ok && m.stats.exhausted && m.stats.runs == runsByLevel[li];
      std::printf("%8s %8zu %10llu %10.1f %12llu\n", levels[li].name, workers,
                  static_cast<unsigned long long>(m.stats.runs), m.ms,
                  static_cast<unsigned long long>(m.stats.dporBacktracks));
      json.beginObject();
      json.field("reduction", levels[li].name);
      json.field("workers", workers);
      json.field("runs", m.stats.runs);
      json.field("ms", m.ms);
      json.field("dpor_backtracks", m.stats.dporBacktracks);
      json.endObject();
    }
  }
  json.endArray();

  const double dporVsSleepPct = pct(runsByLevel[2], runsByLevel[1]);
  std::printf("dpor explores %.1f%% of the sleep-set run count "
              "(%llu vs %llu; full enumeration %llu)\n",
              dporVsSleepPct,
              static_cast<unsigned long long>(runsByLevel[2]),
              static_cast<unsigned long long>(runsByLevel[1]),
              static_cast<unsigned long long>(runsByLevel[0]));
  if (runsByLevel[2] * 2 > runsByLevel[1]) {
    std::printf("FAIL: dpor %.1f%% of sleep runs > 50%%\n", dporVsSleepPct);
    ok = false;
  }

  // Failure-set preservation on a deadlocking companion: DPOR owes the
  // exact distinct-deadlock-state set of full enumeration.  Full mode uses
  // the FF-T5 tree at depth 7 (calibrated in tests/sched_dpor_test.cpp —
  // bounded POR genuinely diverges at tighter bounds); smoke uses the
  // unbounded lock-order tree, where no bound caveat applies at all.
  const Scenario redDlScenario =
      smoke ? static_cast<Scenario>(scenarios::lockOrder)
            : static_cast<Scenario>(scenarios::ffT5Small);
  const std::size_t redDlDepth = smoke ? static_cast<std::size_t>(-1) : 7;
  const char* redDlName = smoke ? "lock_order" : "ff_t5_small";
  Measured redDlFull =
      run(redDlScenario, 1, redDlDepth, false, Reduction::None);
  Measured redDlDpor =
      run(redDlScenario, 1, redDlDepth, false, Reduction::Dpor);
  const bool redSetsEqual = redDlFull.deadlockSigs == redDlDpor.deadlockSigs &&
                            !redDlFull.deadlockSigs.empty();
  std::printf("deadlock set (%s): %zu distinct state(s), %s under dpor "
              "(%llu -> %llu runs)\n",
              redDlName, redDlFull.deadlockSigs.size(),
              redSetsEqual ? "preserved" : "CHANGED",
              static_cast<unsigned long long>(redDlFull.stats.runs),
              static_cast<unsigned long long>(redDlDpor.stats.runs));
  ok = ok && redSetsEqual;

  // Wall-clock: DPOR must not be slower than sleep sets on the tree it
  // reduces ~8x.  Only asserted on hosts with >= 8 hardware threads —
  // single-core CI boxes timeshare the worker rows and the serial
  // measurements get too noisy to gate on.
  if (!smoke && hw >= 8 && serialMsByLevel[2] > serialMsByLevel[1] * 1.25) {
    std::printf("FAIL: dpor serial %.1fms > 1.25x sleep serial %.1fms\n",
                serialMsByLevel[2], serialMsByLevel[1]);
    ok = false;
  }

  json.field("dpor_vs_sleep_runs_pct", dporVsSleepPct);
  json.field("sleep_serial_ms", serialMsByLevel[1]);
  json.field("dpor_serial_ms", serialMsByLevel[2]);
  json.field("deadlock_scenario", redDlName);
  json.field("deadlock_states", redDlFull.deadlockSigs.size());
  json.field("deadlock_sets_equal", redSetsEqual);
  json.endObject();

  // ---- 4. incremental vs replay -------------------------------------------
  // The replay-bound configuration: DPOR has already collapsed the run
  // count, so per-run cost is dominated by re-executing each branch's
  // prefix from the root — exactly what copy-on-write checkpoints remove.
  // Serial rows (workers=1) so the comparison is replay cost, not
  // timesharing.  Full mode gates >= 2x runs/sec at branch depth 8; smoke
  // keeps the tree small and reports without asserting.
  const std::size_t incDepth = smoke ? 6 : 8;
  Measured incReplay = run(scenarios::ffT5Small, 1, incDepth, false,
                           Reduction::Dpor, /*incremental=*/false);
  Measured incInc = run(scenarios::ffT5Small, 1, incDepth, false,
                        Reduction::Dpor, /*incremental=*/true);
  const double replayRps = incReplay.ms > 0.0
      ? 1000.0 * static_cast<double>(incReplay.stats.runs) / incReplay.ms
      : 0.0;
  const double incRps = incInc.ms > 0.0
      ? 1000.0 * static_cast<double>(incInc.stats.runs) / incInc.ms
      : 0.0;
  const double incSpeedup = replayRps > 0.0 ? incRps / replayRps : 0.0;
  std::printf("\nincremental vs replay (ff_t5_small, dpor, depth %zu):\n",
              incDepth);
  std::printf("  replay:      %llu runs in %.1fms (%.1f runs/sec)\n",
              static_cast<unsigned long long>(incReplay.stats.runs),
              incReplay.ms, replayRps);
  std::printf("  incremental: %llu runs in %.1fms (%.1f runs/sec, %.2fx), "
              "%llu replay steps avoided, %llu restores, peak %zu snapshot "
              "bytes\n",
              static_cast<unsigned long long>(incInc.stats.runs), incInc.ms,
              incRps, incSpeedup,
              static_cast<unsigned long long>(incInc.stats.replayStepsAvoided),
              static_cast<unsigned long long>(incInc.stats.snapshotRestores),
              incInc.stats.snapshotPeakBytes);

  json.key("incremental_vs_replay");
  json.beginObject();
  json.field("scenario", "ff_t5_small");
  json.field("reduction", "dpor");
  json.field("branch_depth", incDepth);
  json.field("workers", std::size_t{1});
  json.field("runs", incInc.stats.runs);
  json.field("replay_ms", incReplay.ms);
  json.field("incremental_ms", incInc.ms);
  json.field("replay_runs_per_sec", replayRps);
  json.field("incremental_runs_per_sec", incRps);
  json.field("speedup", incSpeedup);
  json.field("replay_steps_avoided", incInc.stats.replayStepsAvoided);
  json.field("snapshot_restores", incInc.stats.snapshotRestores);
  json.field("snapshot_peak_bytes", incInc.stats.snapshotPeakBytes);
  const bool gateIncremental = !smoke && sched::fibersSupported();
  if (!gateIncremental) {
    json.field("skipped_reason",
               smoke ? std::string("smoke mode: tree too small to gate")
                     : std::string("no fiber support: incremental degrades "
                                   "to replay by design"));
  }
  json.endObject();
  json.endObject();

  // Identical observables is a hard invariant in every mode; the speedup
  // bar only gates where the mechanism can actually engage.
  ok = ok && incReplay.stats.exhausted && incInc.stats.exhausted &&
       incInc.stats.runs == incReplay.stats.runs &&
       incInc.deadlockSigs == incReplay.deadlockSigs;
  if (gateIncremental && incSpeedup < 2.0) {
    std::printf("FAIL: incremental %.2fx < 2x replay runs/sec at depth %zu\n",
                incSpeedup, incDepth);
    ok = false;
  }

  if (!json.writeFile("BENCH_explorer.json")) {
    std::printf("FAIL: could not write BENCH_explorer.json\n");
    ok = false;
  } else {
    std::printf("\nwrote BENCH_explorer.json\n");
  }

  std::printf("\n%s\n", ok ? "EXPLORER SCALING: OK" : "EXPLORER SCALING: FAILURES");
  return ok ? 0 : 1;
}
