// Figure 1 reproduction: the Petri-net model of Java concurrency.
//
// The paper presents the net and argues informally about its transitions.
// This bench makes every claim checkable:
//   * prints the net (places A-D per thread, shared E; transitions T1-T5)
//     and the prose semantics of each transition;
//   * enumerates the reachability graph for N = 1..6 threads;
//   * verifies the three structural properties the model encodes:
//       - mutual exclusion   (E + sum C_i == 1 in every reachable marking),
//       - token conservation (A_i+B_i+C_i+D_i == 1 per thread),
//       - 1-boundedness;
//   * shows that the printed (free-notify) model is deadlock-free, while
//     the notify-gated refinement has dead markings that are exactly the
//     FF-T5 "all threads waiting" failure — with a shortest witness path;
//   * cross-validates: a real monitor-substrate execution trace is replayed
//     through the net as a firing sequence;
//   * scales the model: an N x M ladder through the packed, symmetry-reduced
//     engine, timed against the plain enumeration, emitted as
//     BENCH_petri.json (--smoke runs a truncated ladder).
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "confail/events/trace.hpp"
#include "confail/monitor/monitor.hpp"
#include "confail/monitor/runtime.hpp"
#include "confail/obs/json.hpp"
#include "confail/petri/invariants.hpp"
#include "confail/petri/reachability.hpp"
#include "confail/petri/symmetry.hpp"
#include "confail/petri/thread_lock_net.hpp"
#include "confail/petri/trace_validator.hpp"
#include "confail/sched/virtual_scheduler.hpp"
#include "confail/taxonomy/taxonomy.hpp"

namespace petri = confail::petri;
namespace sched = confail::sched;
namespace tax = confail::taxonomy;

namespace {

struct LadderRow {
  unsigned threads;
  unsigned monitors;
  const char* model;
  std::size_t reducedStates = 0;
  std::uint64_t fullStates = 0;
  bool fullEnumerated = false;  ///< plain enumeration ran within the cap
  bool complete = false;        ///< reduced enumeration exhausted the space
  double reducedMs = 0.0;
  double fullMs = 0.0;
  double ratio = 0.0;  ///< full states / reduced states
  double statesPerSec = 0.0;  ///< full-space coverage rate via the quotient
};

double msSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

LadderRow ladderRung(unsigned n, unsigned m, petri::NotifyModel model,
                     std::size_t cap) {
  LadderRow row{n, m, model == petri::NotifyModel::Free ? "free" : "gated"};
  auto tl = petri::buildThreadLockNet(n, m, model);

  petri::SymReachOptions ro;
  ro.symmetry = petri::Symmetry::Threads;
  ro.maxStates = cap;
  auto t0 = std::chrono::steady_clock::now();
  auto reduced = petri::reachableSymmetric(tl, ro);
  row.reducedMs = msSince(t0);
  row.reducedStates = reduced.stateCount();
  row.fullStates = reduced.fullStateCount();
  row.complete = reduced.complete;

  // Time the unreduced enumeration where it fits the cap; past that the
  // quotient is the only feasible engine and the row says so.
  if (row.complete && row.fullStates <= cap) {
    t0 = std::chrono::steady_clock::now();
    auto full = petri::reachable(tl.net, tl.initial, cap);
    row.fullMs = msSince(t0);
    row.fullEnumerated = full.complete;
  }
  if (row.reducedStates > 0) {
    row.ratio = static_cast<double>(row.fullStates) /
                static_cast<double>(row.reducedStates);
  }
  if (row.reducedMs > 0.0) {
    row.statesPerSec =
        static_cast<double>(row.fullStates) / (row.reducedMs / 1000.0);
  }
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  int failures = 0;
  auto check = [&failures](bool ok, const std::string& what) {
    std::printf("  [%s] %s\n", ok ? "ok" : "FAIL", what.c_str());
    if (!ok) ++failures;
  };

  std::printf("=== Figure 1: Petri-net model of concurrency ===\n\n");

  {
    auto tl = petri::buildThreadLockNet(1, petri::NotifyModel::Free);
    std::printf("%s\n", tl.net.describe().c_str());
    std::printf("initial marking: %s\n\n",
                tl.net.renderMarking(tl.initial).c_str());
  }

  std::printf("transition semantics (Section 4):\n");
  for (auto t : {tax::Transition::T1, tax::Transition::T2, tax::Transition::T3,
                 tax::Transition::T4, tax::Transition::T5}) {
    std::printf("  %s: %s\n", tax::transitionName(t),
                tax::transitionDescription(t));
  }

  std::printf("\n--- reachability, N threads x 1 lock (free-notify model) ---\n");
  std::printf("%8s %10s %10s %6s %8s %8s %8s\n", "threads", "states",
              "edges", "dead", "mutex", "conserve", "1-bound");
  for (unsigned n = 1; n <= 6; ++n) {
    auto tl = petri::buildThreadLockNet(n, petri::NotifyModel::Free);
    auto r = petri::reachable(tl.net, tl.initial);
    bool mutex = petri::holdsPInvariant(r, tl.lockInvariantWeights());
    bool conserve = true;
    for (unsigned i = 0; i < n; ++i) {
      conserve =
          conserve && petri::holdsPInvariant(r, tl.threadConservationWeights(i));
    }
    bool bounded = petri::maxTokensPerPlace(r) == 1;
    std::printf("%8u %10zu %10zu %6zu %8s %8s %8s\n", n, r.stateCount(),
                r.edgeCount(), r.deadStates.size(), mutex ? "yes" : "NO",
                conserve ? "yes" : "NO", bounded ? "yes" : "NO");
    if (!r.complete || !mutex || !conserve || !bounded || !r.deadStates.empty()) {
      ++failures;
    }
  }
  std::printf("(the free model is deadlock-free: T5 may always fire; the\n"
              " dashed notify arc is abstracted as spontaneous)\n");

  std::printf("\n--- structural P-invariants (computed, not asserted) ---\n");
  {
    auto tl = petri::buildThreadLockNet(3, petri::NotifyModel::Free);
    auto basis = petri::computePInvariants(tl.net);
    std::printf("  invariant basis of the 3-thread net (%zu vectors; expected "
                "4 = 3 thread conservations + mutual exclusion):\n",
                basis.size());
    for (const auto& y : basis) {
      std::printf("   ");
      for (petri::PlaceId p = 0; p < tl.net.placeCount(); ++p) {
        if (y[p] != 0) {
          std::printf(" %+lld*%s", y[p], tl.net.placeName(p).c_str());
        }
      }
      std::printf("  = const\n");
    }
    check(basis.size() == 4, "null-space dimension matches the model");
    bool allHold = true;
    auto r = petri::reachable(tl.net, tl.initial);
    for (const auto& y : basis) {
      std::vector<int> w(y.begin(), y.end());
      allHold = allHold && petri::holdsPInvariant(r, w);
    }
    check(allHold, "every computed invariant holds over the reachable set");
  }

  std::printf("\n--- notify-gated refinement: T5_i requires a notifier in C_j ---\n");
  std::printf("%8s %10s %6s %22s\n", "threads", "states", "dead",
              "all-waiting dead state");
  for (unsigned n = 2; n <= 5; ++n) {
    auto tl = petri::buildThreadLockNet(n, petri::NotifyModel::Gated);
    auto r = petri::reachable(tl.net, tl.initial);
    bool allWaitingDead = false;
    std::size_t witness = 0;
    for (std::size_t s : r.deadStates) {
      if (tl.allWaiting(r.states[s])) {
        allWaitingDead = true;
        witness = s;
        break;
      }
    }
    std::printf("%8u %10zu %6zu %22s\n", n, r.stateCount(),
                r.deadStates.size(), allWaitingDead ? "reachable" : "ABSENT");
    if (!allWaitingDead) ++failures;
    if (n == 2 && allWaitingDead) {
      auto path = petri::shortestPathTo(tl.net, r, witness);
      std::printf("  shortest witness (N=2): ");
      for (std::size_t i = 0; i < path.size(); ++i) {
        std::printf("%s%s", i ? " " : "",
                    tl.net.transitionName(path[i]).c_str());
      }
      std::printf("  -> %s\n", tl.net.renderMarking(r.states[witness]).c_str());
      std::printf("  (this dead marking IS Table 1's FF-T5: every thread in "
                  "the wait state, no notifier left)\n");
    }
  }

  std::printf("\n--- model vs substrate: trace replay ---\n");
  {
    confail::events::Trace trace;
    sched::RoundRobinStrategy strategy;
    sched::VirtualScheduler s(strategy);
    confail::monitor::Runtime rt(trace, s, 1);
    confail::monitor::Monitor m(rt, "m");
    bool go = false;
    for (int i = 0; i < 3; ++i) {
      rt.spawn("w" + std::to_string(i), [&] {
        confail::monitor::Synchronized sync(m);
        while (!go) m.wait();
      });
    }
    rt.spawn("n", [&] {
      for (int k = 0; k < 10; ++k) rt.schedulePoint();
      confail::monitor::Synchronized sync(m);
      go = true;
      m.notifyAll();
    });
    auto run = s.run();
    auto v = petri::validateTraceAgainstModel(trace, m.id());
    check(run.ok(), "4-thread wait/notifyAll scenario completes");
    check(v.ok, "its trace is a legal firing sequence of the Figure 1 net (" +
                    std::to_string(v.eventsChecked) + " transitions checked)");
  }

  std::printf("\n--- scaling: N x M ladder, symmetry-reduced vs plain ---\n");
  {
    const std::size_t cap = std::size_t{1} << 20;
    const unsigned maxN1 = smoke ? 6 : 8;
    const unsigned maxN2 = smoke ? 4 : 6;
    std::vector<LadderRow> rows;
    for (petri::NotifyModel model :
         {petri::NotifyModel::Free, petri::NotifyModel::Gated}) {
      for (unsigned n = 2; n <= maxN1; ++n) {
        rows.push_back(ladderRung(n, 1, model, cap));
      }
      for (unsigned n = 2; n <= maxN2; ++n) {
        rows.push_back(ladderRung(n, 2, model, cap));
      }
    }
    if (!smoke) {
      // Past the plain engine's horizon: 8x2 has ~5.7M concrete states,
      // the quotient stays in the thousands.
      rows.push_back(
          ladderRung(8, 2, petri::NotifyModel::Free, cap));
      rows.push_back(
          ladderRung(8, 2, petri::NotifyModel::Gated, cap));
    }

    std::printf("%6s %4s %6s %10s %12s %8s %10s %12s\n", "model", "N", "M",
                "reduced", "full", "ratio", "red ms", "states/sec");
    for (const LadderRow& row : rows) {
      std::printf("%6s %4u %6u %10zu %12llu %7.1fx %10.2f %12.0f%s\n",
                  row.model, row.threads, row.monitors, row.reducedStates,
                  static_cast<unsigned long long>(row.fullStates), row.ratio,
                  row.reducedMs, row.statesPerSec,
                  row.complete ? "" : "  CAPPED");
      if (!row.complete) ++failures;
    }

    // Gates: the quotient must buy at least 4x at gated 6x1, and gated 8x1
    // must enumerate exhaustively — the acceptance case for this engine.
    const auto gate6 = ladderRung(6, 1, petri::NotifyModel::Gated, cap);
    check(gate6.ratio >= 4.0, "gated 6x1 symmetry reduction is >= 4x (got " +
                                  std::to_string(gate6.ratio) + "x)");
    const auto gate8 = ladderRung(8, 1, petri::NotifyModel::Gated, cap);
    check(gate8.complete && gate8.fullStates == 24057,
          "gated 8x1 enumerates exhaustively under symmetry (24057 concrete"
          " states as " + std::to_string(gate8.reducedStates) + ")");

    confail::obs::JsonWriter w;
    w.beginObject();
    w.field("schema", "confail.bench.petri.v1");
    w.field("smoke", smoke);
    w.field("max_states", cap);
    w.key("ladder");
    w.beginArray();
    for (const LadderRow& row : rows) {
      w.beginObject();
      w.field("model", row.model);
      w.field("threads", row.threads);
      w.field("monitors", row.monitors);
      w.field("reduced_states", row.reducedStates);
      w.field("full_states", row.fullStates);
      w.field("reduction_ratio", row.ratio);
      w.field("complete", row.complete);
      w.field("full_enumerated", row.fullEnumerated);
      w.field("reduced_ms", row.reducedMs);
      w.field("full_ms", row.fullMs);
      w.field("states_per_sec", row.statesPerSec);
      w.endObject();
    }
    w.endArray();
    w.key("gates");
    w.beginObject();
    w.field("gated_6x1_reduction", gate6.ratio);
    w.field("gated_8x1_complete", gate8.complete);
    w.field("gated_8x1_reduced_states", gate8.reducedStates);
    w.endObject();
    w.endObject();
    if (!w.writeFile("BENCH_petri.json")) {
      std::printf("  [FAIL] cannot write BENCH_petri.json\n");
      ++failures;
    } else {
      std::printf("  wrote BENCH_petri.json (%zu ladder rows)\n", rows.size());
    }
  }

  std::printf("\n%s\n", failures == 0 ? "FIGURE 1 REPRODUCTION: OK"
                                      : "FIGURE 1 REPRODUCTION: FAILURES");
  return failures == 0 ? 0 : 1;
}
