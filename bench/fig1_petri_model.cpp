// Figure 1 reproduction: the Petri-net model of Java concurrency.
//
// The paper presents the net and argues informally about its transitions.
// This bench makes every claim checkable:
//   * prints the net (places A-D per thread, shared E; transitions T1-T5)
//     and the prose semantics of each transition;
//   * enumerates the reachability graph for N = 1..6 threads;
//   * verifies the three structural properties the model encodes:
//       - mutual exclusion   (E + sum C_i == 1 in every reachable marking),
//       - token conservation (A_i+B_i+C_i+D_i == 1 per thread),
//       - 1-boundedness;
//   * shows that the printed (free-notify) model is deadlock-free, while
//     the notify-gated refinement has dead markings that are exactly the
//     FF-T5 "all threads waiting" failure — with a shortest witness path;
//   * cross-validates: a real monitor-substrate execution trace is replayed
//     through the net as a firing sequence.
#include <cstdio>
#include <string>

#include "confail/events/trace.hpp"
#include "confail/monitor/monitor.hpp"
#include "confail/monitor/runtime.hpp"
#include "confail/petri/invariants.hpp"
#include "confail/petri/reachability.hpp"
#include "confail/petri/thread_lock_net.hpp"
#include "confail/petri/trace_validator.hpp"
#include "confail/sched/virtual_scheduler.hpp"
#include "confail/taxonomy/taxonomy.hpp"

namespace petri = confail::petri;
namespace sched = confail::sched;
namespace tax = confail::taxonomy;

int main() {
  int failures = 0;
  auto check = [&failures](bool ok, const std::string& what) {
    std::printf("  [%s] %s\n", ok ? "ok" : "FAIL", what.c_str());
    if (!ok) ++failures;
  };

  std::printf("=== Figure 1: Petri-net model of concurrency ===\n\n");

  {
    auto tl = petri::buildThreadLockNet(1, petri::NotifyModel::Free);
    std::printf("%s\n", tl.net.describe().c_str());
    std::printf("initial marking: %s\n\n",
                tl.net.renderMarking(tl.initial).c_str());
  }

  std::printf("transition semantics (Section 4):\n");
  for (auto t : {tax::Transition::T1, tax::Transition::T2, tax::Transition::T3,
                 tax::Transition::T4, tax::Transition::T5}) {
    std::printf("  %s: %s\n", tax::transitionName(t),
                tax::transitionDescription(t));
  }

  std::printf("\n--- reachability, N threads x 1 lock (free-notify model) ---\n");
  std::printf("%8s %10s %10s %6s %8s %8s %8s\n", "threads", "states",
              "edges", "dead", "mutex", "conserve", "1-bound");
  for (unsigned n = 1; n <= 6; ++n) {
    auto tl = petri::buildThreadLockNet(n, petri::NotifyModel::Free);
    auto r = petri::reachable(tl.net, tl.initial);
    bool mutex = petri::holdsPInvariant(r, tl.lockInvariantWeights());
    bool conserve = true;
    for (unsigned i = 0; i < n; ++i) {
      conserve =
          conserve && petri::holdsPInvariant(r, tl.threadConservationWeights(i));
    }
    bool bounded = petri::maxTokensPerPlace(r) == 1;
    std::printf("%8u %10zu %10zu %6zu %8s %8s %8s\n", n, r.stateCount(),
                r.edgeCount(), r.deadStates.size(), mutex ? "yes" : "NO",
                conserve ? "yes" : "NO", bounded ? "yes" : "NO");
    if (!r.complete || !mutex || !conserve || !bounded || !r.deadStates.empty()) {
      ++failures;
    }
  }
  std::printf("(the free model is deadlock-free: T5 may always fire; the\n"
              " dashed notify arc is abstracted as spontaneous)\n");

  std::printf("\n--- structural P-invariants (computed, not asserted) ---\n");
  {
    auto tl = petri::buildThreadLockNet(3, petri::NotifyModel::Free);
    auto basis = petri::computePInvariants(tl.net);
    std::printf("  invariant basis of the 3-thread net (%zu vectors; expected "
                "4 = 3 thread conservations + mutual exclusion):\n",
                basis.size());
    for (const auto& y : basis) {
      std::printf("   ");
      for (petri::PlaceId p = 0; p < tl.net.placeCount(); ++p) {
        if (y[p] != 0) {
          std::printf(" %+lld*%s", y[p], tl.net.placeName(p).c_str());
        }
      }
      std::printf("  = const\n");
    }
    check(basis.size() == 4, "null-space dimension matches the model");
    bool allHold = true;
    auto r = petri::reachable(tl.net, tl.initial);
    for (const auto& y : basis) {
      std::vector<int> w(y.begin(), y.end());
      allHold = allHold && petri::holdsPInvariant(r, w);
    }
    check(allHold, "every computed invariant holds over the reachable set");
  }

  std::printf("\n--- notify-gated refinement: T5_i requires a notifier in C_j ---\n");
  std::printf("%8s %10s %6s %22s\n", "threads", "states", "dead",
              "all-waiting dead state");
  for (unsigned n = 2; n <= 5; ++n) {
    auto tl = petri::buildThreadLockNet(n, petri::NotifyModel::Gated);
    auto r = petri::reachable(tl.net, tl.initial);
    bool allWaitingDead = false;
    std::size_t witness = 0;
    for (std::size_t s : r.deadStates) {
      if (tl.allWaiting(r.states[s])) {
        allWaitingDead = true;
        witness = s;
        break;
      }
    }
    std::printf("%8u %10zu %6zu %22s\n", n, r.stateCount(),
                r.deadStates.size(), allWaitingDead ? "reachable" : "ABSENT");
    if (!allWaitingDead) ++failures;
    if (n == 2 && allWaitingDead) {
      auto path = petri::shortestPathTo(tl.net, r, witness);
      std::printf("  shortest witness (N=2): ");
      for (std::size_t i = 0; i < path.size(); ++i) {
        std::printf("%s%s", i ? " " : "",
                    tl.net.transitionName(path[i]).c_str());
      }
      std::printf("  -> %s\n", tl.net.renderMarking(r.states[witness]).c_str());
      std::printf("  (this dead marking IS Table 1's FF-T5: every thread in "
                  "the wait state, no notifier left)\n");
    }
  }

  std::printf("\n--- model vs substrate: trace replay ---\n");
  {
    confail::events::Trace trace;
    sched::RoundRobinStrategy strategy;
    sched::VirtualScheduler s(strategy);
    confail::monitor::Runtime rt(trace, s, 1);
    confail::monitor::Monitor m(rt, "m");
    bool go = false;
    for (int i = 0; i < 3; ++i) {
      rt.spawn("w" + std::to_string(i), [&] {
        confail::monitor::Synchronized sync(m);
        while (!go) m.wait();
      });
    }
    rt.spawn("n", [&] {
      for (int k = 0; k < 10; ++k) rt.schedulePoint();
      confail::monitor::Synchronized sync(m);
      go = true;
      m.notifyAll();
    });
    auto run = s.run();
    auto v = petri::validateTraceAgainstModel(trace, m.id());
    check(run.ok(), "4-thread wait/notifyAll scenario completes");
    check(v.ok, "its trace is a legal firing sequence of the Figure 1 net (" +
                    std::to_string(v.eventsChecked) + " transitions checked)");
  }

  std::printf("\n%s\n", failures == 0 ? "FIGURE 1 REPRODUCTION: OK"
                                      : "FIGURE 1 REPRODUCTION: FAILURES");
  return failures == 0 ? 0 : 1;
}
