// Minimal JSON emitter for the bench binaries' machine-readable outputs
// (BENCH_*.json).  Flat builder, no dependencies: values are appended in
// document order and commas/indentation are handled by nesting depth.
// Only what the benches need — objects, arrays, numbers, strings, bools.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <type_traits>

namespace confail::benchjson {

class Writer {
 public:
  void beginObject() { open('{'); }
  void endObject() { close('}'); }
  void beginArray() { open('['); }
  void endArray() { close(']'); }

  void key(const std::string& k) {
    comma();
    out_ += '"';
    escape(k);
    out_ += "\": ";
    pendingValue_ = true;
  }

  void value(const std::string& v) {
    comma();
    out_ += '"';
    escape(v);
    out_ += '"';
  }
  void value(const char* v) { value(std::string(v)); }
  void value(bool v) {
    comma();
    out_ += v ? "true" : "false";
  }
  void value(double v) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.3f", v);
    comma();
    out_ += buf;
  }
  template <typename T>
    requires(std::is_integral_v<T> && !std::is_same_v<T, bool>)
  void value(T v) {
    comma();
    out_ += std::to_string(v);
  }

  template <typename T>
  void field(const std::string& k, T v) {
    key(k);
    value(v);
  }

  const std::string& str() const { return out_; }

  /// Write the document to `path`; returns false on I/O failure.
  bool writeFile(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) return false;
    std::fputs(out_.c_str(), f);
    std::fputc('\n', f);
    return std::fclose(f) == 0;
  }

 private:
  void open(char c) {
    comma();
    out_ += c;
    ++depth_;
    first_ = true;
  }
  void close(char c) {
    --depth_;
    newlineIndent();
    out_ += c;
    first_ = false;
  }
  void comma() {
    if (pendingValue_) {
      pendingValue_ = false;  // value directly follows its key
      return;
    }
    if (!first_ && depth_ > 0) out_ += ',';
    if (depth_ > 0) newlineIndent();
    first_ = false;
  }
  void newlineIndent() {
    out_ += '\n';
    out_.append(static_cast<std::size_t>(depth_) * 2, ' ');
  }
  void escape(const std::string& s) {
    for (char c : s) {
      if (c == '"' || c == '\\') out_ += '\\';
      out_ += c;
    }
  }

  std::string out_;
  int depth_ = 0;
  bool first_ = true;
  bool pendingValue_ = false;
};

}  // namespace confail::benchjson
