// Compatibility shim: the bench JSON emitter moved into the observability
// library (confail::obs::JsonWriter) so benches, metrics snapshots and the
// Chrome trace exporter all share one escaping/formatting convention.  This
// header keeps the historical confail::benchjson::Writer name alive for the
// bench sources; new code should include confail/obs/json.hpp directly.
#pragma once

#include "confail/obs/json.hpp"

namespace confail::benchjson {

using Writer = confail::obs::JsonWriter;

}  // namespace confail::benchjson
