// Quickstart: write a concurrent component on the confail monitor
// substrate, test it deterministically, and let the detectors vet the run.
//
//   1. A Runtime in Virtual mode puts every thread under the deterministic
//      scheduler: runs are reproducible, deadlocks are observable.
//   2. Components use Monitor (Java object-lock semantics) + SharedVar
//      (instrumented data) and work unchanged in Real mode too.
//   3. After the run, the trace feeds the detector battery, and a run
//      outcome of Deadlock/StepLimit pinpoints liveness failures.
#include <cstdio>
#include <string>

#include "confail/detect/lockset.hpp"
#include "confail/detect/wait_notify.hpp"
#include "confail/events/trace.hpp"
#include "confail/monitor/monitor.hpp"
#include "confail/monitor/runtime.hpp"
#include "confail/monitor/shared_var.hpp"
#include "confail/sched/virtual_scheduler.hpp"

namespace mon = confail::monitor;
namespace sched = confail::sched;

// A tiny hand-written component: a single-slot mailbox.
class Mailbox {
 public:
  explicit Mailbox(mon::Runtime& rt)
      : rt_(rt), m_(rt, "Mailbox"), value_(rt, "mailbox.value", 0),
        full_(rt, "mailbox.full", 0) {}

  void post(int v) {
    mon::Synchronized sync(m_);
    while (full_.get() != 0) m_.wait();
    value_.set(v);
    full_.set(1);
    m_.notifyAll();
  }

  int fetch() {
    mon::Synchronized sync(m_);
    while (full_.get() == 0) m_.wait();
    int v = value_.get();
    full_.set(0);
    m_.notifyAll();
    return v;
  }

 private:
  mon::Runtime& rt_;
  mon::Monitor m_;
  mon::SharedVar<int> value_;
  mon::SharedVar<int> full_;
};

int main() {
  confail::events::Trace trace;
  sched::RoundRobinStrategy strategy;
  sched::VirtualScheduler scheduler(strategy);
  mon::Runtime rt(trace, scheduler, /*seed=*/42);

  Mailbox box(rt);
  long sum = 0;

  rt.spawn("poster", [&] {
    for (int i = 1; i <= 5; ++i) box.post(i);
  });
  rt.spawn("fetcher", [&] {
    for (int i = 0; i < 5; ++i) sum += box.fetch();
  });

  sched::RunResult run = scheduler.run();
  std::printf("run outcome: %s after %llu scheduling decisions\n",
              sched::outcomeName(run.outcome),
              static_cast<unsigned long long>(run.steps));
  std::printf("sum of fetched values: %ld (expected 15)\n", sum);

  // Vet the execution with two of the Table 1 detectors.
  confail::detect::LocksetDetector lockset;
  confail::detect::WaitNotifyAnalyzer waitNotify;
  auto f1 = lockset.analyze(trace);
  auto f2 = waitNotify.analyze(trace);
  std::printf("lockset findings: %zu, wait/notify findings: %zu\n",
              f1.size(), f2.size());

  std::printf("%zu events recorded; first few:\n", trace.size());
  std::size_t shown = 0;
  trace.render([&shown](const std::string& line) {
    if (shown++ < 8) std::printf("  %s\n", line.c_str());
  });

  bool ok = run.ok() && sum == 15 && f1.empty() && f2.empty();
  std::printf("%s\n", ok ? "QUICKSTART: OK" : "QUICKSTART: FAILED");
  return ok ? 0 : 1;
}
