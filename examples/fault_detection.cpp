// Inject a concurrency fault, detect it, classify it per Table 1.
//
// Walks three seeded mutants of the producer-consumer through the full
// pipeline: deterministic execution -> detector battery + completion-time
// checks -> taxonomy classifier -> Table 1 failure classes with evidence.
#include <cstdio>
#include <vector>

#include "confail/clock/abstract_clock.hpp"
#include "confail/components/producer_consumer.hpp"
#include "confail/conan/test_driver.hpp"
#include "confail/detect/lockset.hpp"
#include "confail/detect/release_discipline.hpp"
#include "confail/detect/wait_notify.hpp"
#include "confail/events/trace.hpp"
#include "confail/monitor/runtime.hpp"
#include "confail/sched/virtual_scheduler.hpp"
#include "confail/taxonomy/classifier.hpp"

namespace detect = confail::detect;
namespace sched = confail::sched;
namespace tax = confail::taxonomy;
using confail::clock::AbstractClock;
using confail::components::ProducerConsumer;
using confail::conan::Call;
using confail::conan::TestDriver;
using confail::monitor::Runtime;

namespace {

tax::FailureReport testMutant(const char* name,
                              const ProducerConsumer::Faults& faults) {
  confail::events::Trace trace;
  sched::RoundRobinStrategy strategy;
  sched::VirtualScheduler scheduler(strategy);
  Runtime rt(trace, scheduler, 1);
  AbstractClock clk(rt);
  TestDriver driver(rt, clk);
  ProducerConsumer pc(rt, faults);

  Call r;
  r.thread = "consumer";
  r.startTick = 1;
  r.label = "receive()";
  r.action = [&pc]() -> std::int64_t { return pc.receive(); };
  r.completionWindow = {{3, 3}};
  r.expectedValue = 'x';
  r.expectWait = true;
  driver.add(r);
  driver.addVoid("producer", 3, "send(x)", [&pc] { pc.send("x"); }, {{3, 3}});

  auto results = driver.execute();

  detect::LocksetDetector lockset;
  detect::WaitNotifyAnalyzer waitNotify;
  detect::ReleaseDisciplineDetector release;
  std::vector<detect::Finding> findings;
  for (detect::Detector* d : std::initializer_list<detect::Detector*>{
           &lockset, &waitNotify, &release}) {
    auto fs = d->analyze(trace);
    findings.insert(findings.end(), fs.begin(), fs.end());
  }

  auto report = tax::Classifier::classifyAll(findings, results.run, results, trace);
  std::printf("--- mutant: %s ---\n%s\n", name, report.describe().c_str());
  return report;
}

}  // namespace

int main() {
  int ok = 0;

  {
    ProducerConsumer::Faults f;
    f.skipNotify = true;
    auto report = testMutant("send()/receive() never notify", f);
    ok += report.has(tax::FailureClass::FF_T5) ? 1 : 0;
  }
  {
    ProducerConsumer::Faults f;
    f.skipWaitReceive = true;
    auto report = testMutant("receive() skips its wait", f);
    ok += report.has(tax::FailureClass::FF_T3) ? 1 : 0;
  }
  {
    ProducerConsumer::Faults f;
    f.earlyReleaseSend = true;
    auto report = testMutant("send() releases the lock mid-update", f);
    ok += report.has(tax::FailureClass::EF_T4) ? 1 : 0;
  }

  std::printf("%d/3 mutants classified into their intended Table 1 class\n", ok);
  std::printf("%s\n", ok == 3 ? "FAULT DETECTION EXAMPLE: OK"
                              : "FAULT DETECTION EXAMPLE: FAILED");
  return ok == 3 ? 0 : 1;
}
