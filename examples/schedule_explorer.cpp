// Exhaustive schedule exploration: prove a deadlock reachable, then replay
// the failing schedule deterministically.
//
// The component under test is a BoundedBuffer mutant that calls notify()
// where notifyAll() is required — Table 1's FF-T5.  Free-running stress can
// miss it; the explorer walks the schedule tree and produces a concrete,
// replayable failing schedule.
#include <cstdio>
#include <memory>
#include <string>

#include "confail/components/bounded_buffer.hpp"
#include "confail/events/trace.hpp"
#include "confail/monitor/runtime.hpp"
#include "confail/sched/explorer.hpp"
#include "confail/sched/virtual_scheduler.hpp"

namespace comps = confail::components;
namespace sched = confail::sched;
using confail::monitor::Runtime;

namespace {

void scenario(sched::VirtualScheduler& s) {
  struct State {
    confail::events::Trace trace;
    Runtime rt;
    comps::BoundedBuffer<int> buf;
    explicit State(sched::VirtualScheduler& sc)
        : rt(trace, sc, 1), buf(rt, "buf", 1, [] {
            comps::BoundedBuffer<int>::Faults f;
            f.notifyOneOnly = true;  // the seeded FF-T5 bug
            return f;
          }()) {}
  };
  auto st = std::make_shared<State>(s);
  for (int p = 0; p < 2; ++p) {
    st->rt.spawn("producer" + std::to_string(p), [st] {
      for (int i = 0; i < 2; ++i) st->buf.put(i);
    });
  }
  for (int c = 0; c < 2; ++c) {
    st->rt.spawn("consumer" + std::to_string(c), [st] {
      for (int i = 0; i < 2; ++i) (void)st->buf.take();
    });
  }
}

}  // namespace

int main() {
  sched::ExhaustiveExplorer::Options opts;
  opts.maxRuns = 5000;
  opts.maxSteps = 20000;
  sched::ExhaustiveExplorer explorer(opts);

  auto stats = explorer.explore(
      &scenario, [](const std::vector<confail::events::ThreadId>&,
                    const sched::RunResult& r) {
        // Stop at the first deadlock.
        return r.outcome != sched::Outcome::Deadlock;
      });

  std::printf("explored %llu schedules: %llu completed, %llu deadlocked\n",
              static_cast<unsigned long long>(stats.runs),
              static_cast<unsigned long long>(stats.completed),
              static_cast<unsigned long long>(stats.deadlocks));

  if (stats.firstFailure.empty()) {
    std::printf("no deadlock found within the budget\n");
    std::printf("SCHEDULE EXPLORER EXAMPLE: FAILED\n");
    return 1;
  }

  std::printf("first failing schedule (%zu decisions): ",
              stats.firstFailure.size());
  for (std::size_t i = 0; i < stats.firstFailure.size() && i < 24; ++i) {
    std::printf("%u ", stats.firstFailure[i]);
  }
  std::printf("%s\n", stats.firstFailure.size() > 24 ? "..." : "");

  // Replay it: the identical deadlock reproduces, with the blocked-thread
  // report identifying who starved in the wait set.
  sched::PrefixReplayStrategy replay(stats.firstFailure);
  sched::VirtualScheduler::Options so;
  so.maxSteps = 20000;
  sched::VirtualScheduler s(replay, so);
  scenario(s);
  auto r = s.run();
  std::printf("replay outcome: %s\n", sched::outcomeName(r.outcome));
  for (const auto& b : r.blocked) {
    std::printf("  blocked: %s (%s)\n", b.name.c_str(),
                sched::blockKindName(b.kind));
  }

  bool ok = r.outcome == sched::Outcome::Deadlock;
  std::printf("%s\n", ok ? "SCHEDULE EXPLORER EXAMPLE: OK"
                         : "SCHEDULE EXPLORER EXAMPLE: FAILED");
  return ok ? 0 : 1;
}
