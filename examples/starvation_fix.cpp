// Detect FF-T2 starvation, then fix it constructively.
//
// Act 1: an unfair monitor (LIFO grants — legal per the JLS, which demands
//        no fairness) starves a victim thread; the starvation detector
//        reports it and the classifier maps it to Table 1's FF-T2.
// Act 2: the same workload on a FifoLock (ticket protocol built on the
//        same unfair monitor) — the victim is served; detector silent.
#include <cstdio>

#include "confail/components/fifo_lock.hpp"
#include "confail/detect/starvation.hpp"
#include "confail/events/trace.hpp"
#include "confail/monitor/monitor.hpp"
#include "confail/monitor/runtime.hpp"
#include "confail/sched/virtual_scheduler.hpp"
#include "confail/taxonomy/classifier.hpp"

namespace sched = confail::sched;
namespace tax = confail::taxonomy;
using confail::monitor::Monitor;
using confail::monitor::Runtime;
using confail::monitor::Synchronized;

int main() {
  bool ok = true;

  std::printf("--- Act 1: unfair monitor starves the victim (FF-T2) ---\n");
  {
    confail::events::Trace trace;
    sched::RoundRobinStrategy strategy;
    sched::VirtualScheduler s(strategy);
    Runtime rt(trace, s, 1);
    Monitor::Options unfair;
    unfair.grantPolicy = confail::monitor::SelectPolicy::Lifo;
    Monitor m(rt, "hot", unfair);

    auto aggressor = [&] {
      m.lock();
      for (int k = 0; k < 6; ++k) rt.schedulePoint();
      for (int i = 0; i < 120; ++i) {
        m.notifyOne();
        m.wait();
      }
      m.unlock();
    };
    rt.spawn("aggressor-0", aggressor);
    rt.spawn("victim", [&] { Synchronized sync(m); });
    rt.spawn("aggressor-1", aggressor);
    s.run();

    confail::detect::StarvationDetector detector(50);
    auto findings = detector.analyze(trace);
    tax::FailureReport report;
    tax::Classifier::addFindings(report, findings, trace);
    std::printf("%s", report.describe().c_str());
    ok = ok && report.has(tax::FailureClass::FF_T2);
  }

  std::printf("\n--- Act 2: the FifoLock ticket protocol fixes it ---\n");
  {
    confail::events::Trace trace;
    sched::RoundRobinStrategy strategy;
    sched::VirtualScheduler s(strategy);
    Runtime rt(trace, s, 1);
    confail::components::FifoLock lock(rt, "fifo");

    bool victimServed = false;
    for (int a = 0; a < 2; ++a) {
      rt.spawn("aggressor-" + std::to_string(a), [&] {
        for (int i = 0; i < 120; ++i) {
          confail::components::FifoLock::Guard g(lock);
          rt.schedulePoint();
        }
      });
    }
    rt.spawn("victim", [&] {
      confail::components::FifoLock::Guard g(lock);
      victimServed = true;
    });
    auto r = s.run();

    confail::detect::StarvationDetector detector(50);
    auto findings = detector.analyze(trace);
    std::printf("victim served: %s; starvation findings: %zu; run: %s\n",
                victimServed ? "yes" : "NO", findings.size(),
                sched::outcomeName(r.outcome));
    ok = ok && victimServed && r.ok();
  }

  std::printf("\n%s\n", ok ? "STARVATION FIX EXAMPLE: OK"
                           : "STARVATION FIX EXAMPLE: FAILED");
  return ok ? 0 : 1;
}
