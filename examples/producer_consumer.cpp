// The paper's worked example, end to end (Figure 2 + Section 6):
//   * the ProducerConsumer monitor exactly as printed in Figure 2;
//   * a Brinch Hansen-style reproducible test: scripted calls at abstract
//     clock ticks with predicted completion times and values;
//   * the trace validated against the Figure 1 Petri-net model.
#include <cstdio>

#include "confail/clock/abstract_clock.hpp"
#include "confail/components/producer_consumer.hpp"
#include "confail/conan/test_driver.hpp"
#include "confail/events/trace.hpp"
#include "confail/monitor/runtime.hpp"
#include "confail/petri/trace_validator.hpp"
#include "confail/sched/virtual_scheduler.hpp"

namespace sched = confail::sched;
using confail::clock::AbstractClock;
using confail::components::ProducerConsumer;
using confail::conan::Call;
using confail::conan::TestDriver;

int main() {
  confail::events::Trace trace;
  sched::RoundRobinStrategy strategy;
  sched::VirtualScheduler scheduler(strategy);
  confail::monitor::Runtime rt(trace, scheduler, 7);
  AbstractClock clk(rt);
  TestDriver driver(rt, clk);

  ProducerConsumer pc(rt);

  // The consumer arrives first: receive() must suspend (T3) until the
  // producer's send at tick 3 notifies it (T5); it completes at tick 3
  // with the first character.  Everything is predicted in advance — this
  // is deterministic, reproducible testing of a monitor.
  Call first;
  first.thread = "consumer";
  first.startTick = 1;
  first.label = "receive() [must wait]";
  first.action = [&pc]() -> std::int64_t { return pc.receive(); };
  first.completionWindow = {{3, 3}};
  first.expectedValue = 'p';
  first.expectWait = true;
  driver.add(first);

  driver.addVoid("producer", 3, "send(\"paper\")",
                 [&pc] { pc.send("paper"); }, {{3, 3}});

  const char* rest = "aper";
  for (int i = 0; i < 4; ++i) {
    Call c;
    c.thread = "consumer";
    c.startTick = static_cast<std::uint64_t>(4 + i);
    c.label = std::string("receive() -> '") + rest[i] + "'";
    c.action = [&pc]() -> std::int64_t { return pc.receive(); };
    c.completionWindow = {{static_cast<std::uint64_t>(4 + i),
                           static_cast<std::uint64_t>(4 + i)}};
    c.expectedValue = rest[i];
    c.expectWait = false;
    driver.add(c);
  }

  auto results = driver.execute();
  std::printf("%s\n", results.describe().c_str());

  auto v = confail::petri::validateTraceAgainstModel(trace, pc.mon().id());
  std::printf("Figure-1 model conformance: %s (%zu transitions checked)\n",
              v.ok ? "ok" : v.message.c_str(), v.eventsChecked);

  bool ok = results.allPassed() && v.ok;
  std::printf("%s\n", ok ? "PRODUCER-CONSUMER EXAMPLE: OK"
                         : "PRODUCER-CONSUMER EXAMPLE: FAILED");
  return ok ? 0 : 1;
}
