// Build a Concurrency Flow Graph, measure arc coverage of a test run, and
// get concrete suggestions for the sequences still missing — the paper's
// Section 6 workflow as a library API.
#include <cstdio>

#include "confail/clock/abstract_clock.hpp"
#include "confail/cofg/cofg.hpp"
#include "confail/cofg/coverage.hpp"
#include "confail/components/bounded_buffer.hpp"
#include "confail/conan/test_driver.hpp"
#include "confail/events/trace.hpp"
#include "confail/monitor/runtime.hpp"
#include "confail/sched/virtual_scheduler.hpp"

namespace cofg = confail::cofg;
namespace sched = confail::sched;
using confail::clock::AbstractClock;
using confail::conan::TestDriver;
using confail::monitor::Runtime;

int main() {
  // The CoFG of a guarded-wait method is derived from its concurrency
  // skeleton — here BoundedBuffer::take(): one wait loop, one notifyAll.
  cofg::MethodModel takeModel("BoundedBuffer.take");
  takeModel.waitLoop("size == 0").notifyAll();
  cofg::Cofg graph = cofg::Cofg::build(takeModel);
  std::printf("%s\n", graph.describe().c_str());
  std::printf("DOT:\n%s\n", graph.toDot().c_str());

  // Run a deliberately weak test (no consumer ever has to wait) and see
  // what the coverage tracker says is missing.
  confail::events::Trace trace;
  sched::RoundRobinStrategy strategy;
  sched::VirtualScheduler scheduler(strategy);
  Runtime rt(trace, scheduler, 3);
  AbstractClock clk(rt);
  TestDriver driver(rt, clk);
  confail::components::BoundedBuffer<int> buf(rt, "BoundedBuffer", 4);

  driver.addVoid("producer", 1, "put(1)", [&buf] { buf.put(1); });
  driver.addVoid("producer", 2, "put(2)", [&buf] { buf.put(2); });
  driver.addVoid("consumer", 3, "take()", [&buf] { (void)buf.take(); });
  driver.addVoid("consumer", 4, "take()", [&buf] { (void)buf.take(); });
  auto results = driver.execute();

  cofg::CoverageTracker cov(graph, buf.takeMethodId());
  cov.process(trace.events());
  std::printf("%s\n", cov.report(trace).c_str());
  std::printf("%s\n", cov.suggestSequences().c_str());

  // Now add the missing scenario — a consumer that arrives first and must
  // wait — and show coverage climbing.
  confail::events::Trace trace2;
  sched::RoundRobinStrategy strategy2;
  sched::VirtualScheduler scheduler2(strategy2);
  Runtime rt2(trace2, scheduler2, 3);
  AbstractClock clk2(rt2);
  TestDriver driver2(rt2, clk2);
  confail::components::BoundedBuffer<int> buf2(rt2, "BoundedBuffer", 4);

  driver2.addVoid("consumer", 1, "take() [waits]", [&buf2] { (void)buf2.take(); });
  driver2.addVoid("consumer2", 2, "take() [waits]", [&buf2] { (void)buf2.take(); });
  driver2.addVoid("producer", 3, "put(1)", [&buf2] { buf2.put(1); });
  driver2.addVoid("producer", 4, "put(2)", [&buf2] { buf2.put(2); });
  auto results2 = driver2.execute();

  cofg::CoverageTracker cov2(graph, buf2.takeMethodId());
  cov2.process(trace2.events());
  std::printf("after adding the waiting-consumer scenario:\n%s\n",
              cov2.report(trace2).c_str());

  bool ok = results.run.ok() && results2.run.ok() &&
            cov.coveredArcs() < cov2.coveredArcs() && cov2.coveredArcs() >= 4;
  std::printf("%s\n", ok ? "COFG COVERAGE EXAMPLE: OK"
                         : "COFG COVERAGE EXAMPLE: FAILED");
  return ok ? 0 : 1;
}
