// Incremental exploration (Options::incremental): differential equivalence
// against the prefix-replay path.
//
// The contract under test (see docs/exploration.md): resuming a branch from
// a copy-on-write checkpoint of its parent's state is an *implementation*
// strategy, not a semantic one — every observable of an exploration must be
// byte-identical to replaying each prefix from the root:
//   * run counts, outcome tallies, pruning/backtrack counters,
//   * the failure set (deadlock-state signatures),
//   * the canonical lexicographically-minimal failing witness,
//   * injected-fault state (deviationsApplied) and the captured trace,
// across every reduction mode and worker count.  Only the snapshot
// mechanism counters (snapshotRestores, replayStepsAvoided,
// snapshotPeakBytes) may differ — they count machinery, not tree shape.
//
// A deliberately tiny snapshot budget must degrade *performance only*: the
// runner falls back to prefix replay from the nearest retained checkpoint
// (the pinned root at worst) and all observables stay identical.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "confail/components/scenario_registry.hpp"
#include "confail/inject/campaign.hpp"
#include "confail/inject/explore_config.hpp"
#include "confail/sched/explorer.hpp"
#include "confail/sched/fingerprint.hpp"
#include "confail/sched/virtual_scheduler.hpp"

namespace sched = confail::sched;
namespace scenarios = confail::components::scenarios;
namespace inject = confail::inject;

namespace {

using Reduction = sched::ExhaustiveExplorer::Reduction;

std::uint64_t deadlockSignature(const sched::RunResult& r) {
  std::uint64_t h = sched::kFpSeed;
  for (const sched::BlockedThreadInfo& b : r.blocked) {
    h = sched::fpMix(h, (static_cast<std::uint64_t>(b.id) << 32) ^
                            static_cast<std::uint64_t>(b.kind));
    h = sched::fpMix(h, b.resource);
  }
  return h;
}

struct Exploration {
  sched::ExhaustiveExplorer::Stats stats;
  std::set<std::uint64_t> deadlockSigs;
  std::set<std::vector<sched::ThreadId>> schedules;
};

Exploration explore(const scenarios::NamedScenario& sc, Reduction reduction,
                    std::size_t maxDepth, std::size_t workers,
                    bool incremental,
                    std::size_t budgetBytes = 256ull * 1024 * 1024) {
  sched::ExhaustiveExplorer::Options eo;
  eo.maxRuns = 200000;
  eo.maxSteps = 20000;
  eo.maxBranchDepth = maxDepth;
  eo.reduction = reduction;
  eo.workers = workers;
  eo.incremental = incremental;
  eo.snapshotBudgetBytes = budgetBytes;
  sched::ExhaustiveExplorer explorer(eo);
  Exploration out;
  out.stats = explorer.explore(
      sc.fn, [&](const std::vector<sched::ThreadId>& schedule,
                 const sched::RunResult& r) {
        out.schedules.insert(schedule);
        if (r.outcome == sched::Outcome::Deadlock) {
          out.deadlockSigs.insert(deadlockSignature(r));
        }
        return true;
      });
  return out;
}

/// Every observable that must not depend on the execution strategy.  The
/// snapshot mechanism counters are deliberately absent.
void expectEquivalent(const Exploration& inc, const Exploration& rep) {
  EXPECT_EQ(inc.stats.runs, rep.stats.runs);
  EXPECT_EQ(inc.stats.completed, rep.stats.completed);
  EXPECT_EQ(inc.stats.deadlocks, rep.stats.deadlocks);
  EXPECT_EQ(inc.stats.stepLimited, rep.stats.stepLimited);
  EXPECT_EQ(inc.stats.exceptions, rep.stats.exceptions);
  EXPECT_EQ(inc.stats.prunedBranches, rep.stats.prunedBranches);
  EXPECT_EQ(inc.stats.dedupedStates, rep.stats.dedupedStates);
  EXPECT_EQ(inc.stats.dporBacktracks, rep.stats.dporBacktracks);
  EXPECT_EQ(inc.stats.exhausted, rep.stats.exhausted);
  EXPECT_EQ(inc.stats.firstFailure, rep.stats.firstFailure);
  EXPECT_EQ(inc.stats.firstFailureOutcome, rep.stats.firstFailureOutcome);
  EXPECT_EQ(inc.deadlockSigs, rep.deadlockSigs);
  EXPECT_EQ(inc.schedules, rep.schedules);
}

std::size_t depthFor(const std::string& name) {
  // Calibrated depths exercise deep checkpoint chains.  Without fiber
  // support (sanitizer builds) incremental degrades to replay by design,
  // so the matrix compares replay against itself — shallower trees keep
  // that degraded-mode run inside the CI timeout (sanitized execution is
  // ~20x slower) without weakening the equivalence check it still makes.
  const std::size_t full = name == "fig2" ? 6 : 7;  // else ff_t5_small
  return sched::fibersSupported() ? full : full - 2;
}

constexpr Reduction kReductions[] = {Reduction::None, Reduction::Sleep,
                                     Reduction::Dpor};
constexpr std::size_t kWorkerCounts[] = {1, 2, 8};

const char* reductionName(Reduction r) {
  switch (r) {
    case Reduction::None: return "none";
    case Reduction::Sleep: return "sleep";
    case Reduction::Dpor: return "dpor";
  }
  return "?";
}

}  // namespace

// The headline differential: incremental ≡ replay on every observable,
// for {none, sleep, dpor} × {1, 2, 8} workers on fig2 and ff_t5_small.
TEST(SchedIncrementalTest, MatchesReplayAcrossModesAndWorkerCounts) {
  for (const char* name : {"fig2", "ff_t5_small"}) {
    const scenarios::NamedScenario* sc = scenarios::find(name);
    ASSERT_NE(sc, nullptr);
    const std::size_t depth = depthFor(name);
    for (Reduction reduction : kReductions) {
      // One replay baseline per (scenario, reduction); the replay path is
      // itself worker-count-deterministic (covered by the dpor suite).
      const Exploration rep =
          explore(*sc, reduction, depth, 1, /*incremental=*/false);
      ASSERT_TRUE(rep.stats.exhausted);
      for (std::size_t workers : kWorkerCounts) {
        SCOPED_TRACE(std::string(name) + " reduction=" +
                     reductionName(reduction) +
                     " workers=" + std::to_string(workers));
        const Exploration inc =
            explore(*sc, reduction, depth, workers, /*incremental=*/true);
        expectEquivalent(inc, rep);
      }
    }
  }
}

// The mechanism actually engages: with fibers available, deep branches are
// resumed from checkpoints instead of replayed, and the saved work is
// visible in the mechanism counters.
TEST(SchedIncrementalTest, SnapshotsEngageWhenFibersAvailable) {
  if (!sched::fibersSupported()) {
    GTEST_SKIP() << "no fiber support (sanitizer build?): incremental "
                    "exploration degrades to replay by design";
  }
  const scenarios::NamedScenario* sc = scenarios::find("ff_t5_small");
  ASSERT_NE(sc, nullptr);
  const Exploration inc =
      explore(*sc, Reduction::Dpor, 7, 1, /*incremental=*/true);
  EXPECT_GT(inc.stats.snapshotRestores, 0u);
  EXPECT_GT(inc.stats.replayStepsAvoided, 0u);
  EXPECT_GT(inc.stats.snapshotPeakBytes, 0u);

  const Exploration rep =
      explore(*sc, Reduction::Dpor, 7, 1, /*incremental=*/false);
  EXPECT_EQ(rep.stats.snapshotRestores, 0u);
  EXPECT_EQ(rep.stats.replayStepsAvoided, 0u);
  EXPECT_EQ(rep.stats.snapshotPeakBytes, 0u);
}

// Budget fallback: a snapshot budget too small to retain anything but the
// pinned root checkpoint must not change a single observable — branches
// fall back to prefix replay from the nearest retained snapshot.
TEST(SchedIncrementalTest, TinySnapshotBudgetFallsBackToReplay) {
  for (const char* name : {"fig2", "ff_t5_small"}) {
    const scenarios::NamedScenario* sc = scenarios::find(name);
    ASSERT_NE(sc, nullptr);
    const std::size_t depth = depthFor(name);
    const Exploration rep =
        explore(*sc, Reduction::Dpor, depth, 1, /*incremental=*/false);
    for (std::size_t budget : {std::size_t{1}, std::size_t{64} * 1024}) {
      SCOPED_TRACE(std::string(name) + " budget=" + std::to_string(budget));
      const Exploration inc = explore(*sc, Reduction::Dpor, depth, 2,
                                      /*incremental=*/true, budget);
      expectEquivalent(inc, rep);
    }
  }
}

// Injector state is part of the snapshot protocol: a restored branch must
// observe exactly the injected-fault state its prefix produced, and the
// per-run trace must be indistinguishable from a from-scratch execution —
// including the trailing events emitted while residual threads unwind.
TEST(SchedIncrementalTest, InjectorStateAndTraceSurviveRestore) {
  const scenarios::NamedScenario* fig2 = scenarios::find("fig2");
  ASSERT_NE(fig2, nullptr);
  const inject::InjectionPlan plan = inject::defaultPlanFor(
      confail::taxonomy::FailureClass::EF_T4, *fig2);

  using RunSig = std::map<std::vector<sched::ThreadId>, std::string>;
  auto signatures = [&](bool incremental, std::size_t workers) {
    sched::ExhaustiveExplorer::Options eo;
    eo.maxRuns = 500;
    eo.maxSteps = 2000;
    eo.maxBranchDepth = 4;
    eo.workers = workers;
    eo.incremental = incremental;
    inject::ExploreConfig cfg;
    cfg.scenario(*fig2).plan(plan).explorer(eo);
    RunSig sigs;
    (void)cfg.explore([&](const inject::RunView& view) {
      std::string s = "dev=" + std::to_string(view.deviationsApplied);
      if (view.trace != nullptr) {
        for (const auto& e : view.trace->events()) s += "\n" + e.toString();
      }
      sigs[view.schedule] = s;
      return true;
    });
    return sigs;
  };

  const RunSig replay = signatures(/*incremental=*/false, 1);
  ASSERT_FALSE(replay.empty());
  for (std::size_t workers : kWorkerCounts) {
    SCOPED_TRACE(workers);
    EXPECT_EQ(signatures(/*incremental=*/true, workers), replay);
  }
}
