// Differential tests for the symmetry-reduced, packed, parallel
// reachability engine and the explorer ⊆ net cross-check oracle.
//
// The ground truth is the plain (Symmetry::None) enumeration: across an
// N x M x {Free, Gated} grid the reduced quotient must orbit-expand to the
// exact full state/dead-marking counts and produce identical property
// verdicts; and the engine must be byte-deterministic across worker
// counts — that is the whole contract that lets the parallel frontier
// replace the serial one.
#include <gtest/gtest.h>

#include "confail/inject/explore_config.hpp"
#include "confail/petri/cross_check.hpp"
#include "confail/petri/properties.hpp"
#include "confail/petri/symmetry.hpp"
#include "confail/petri/thread_lock_net.hpp"
#include "confail/sched/virtual_scheduler.hpp"

namespace petri = confail::petri;
namespace sched = confail::sched;
namespace inject = confail::inject;
using petri::buildThreadLockNet;
using petri::Marking;
using petri::NotifyModel;
using petri::Symmetry;

namespace {

petri::ReachabilityResult enumerate(const petri::ThreadLockNet& tl,
                                    Symmetry sym, std::size_t workers = 1) {
  petri::SymReachOptions ro;
  ro.symmetry = sym;
  ro.workers = workers;
  return petri::reachableSymmetric(tl, ro);
}

}  // namespace

TEST(Symmetry, QuotientOrbitExpandsToTheFullSpace) {
  for (unsigned n = 2; n <= 4; ++n) {
    for (unsigned m = 1; m <= 2; ++m) {
      for (NotifyModel model : {NotifyModel::Free, NotifyModel::Gated}) {
        auto tl = buildThreadLockNet(n, m, model);
        auto full = enumerate(tl, Symmetry::None);
        auto reduced = enumerate(tl, Symmetry::Threads);
        ASSERT_TRUE(full.complete);
        ASSERT_TRUE(reduced.complete);
        const char* tag = model == NotifyModel::Free ? "free" : "gated";
        EXPECT_LE(reduced.stateCount(), full.stateCount());
        EXPECT_EQ(reduced.fullStateCount(), full.stateCount())
            << n << "x" << m << " " << tag;
        EXPECT_EQ(reduced.fullDeadStateCount(), full.deadStates.size())
            << n << "x" << m << " " << tag;
      }
    }
  }
}

TEST(Symmetry, FullSymmetryAlsoQuotientsMonitors) {
  auto tl = buildThreadLockNet(3, 2, NotifyModel::Free);
  auto full = enumerate(tl, Symmetry::None);
  auto threads = enumerate(tl, Symmetry::Threads);
  auto both = enumerate(tl, Symmetry::Full);
  ASSERT_TRUE(both.complete);
  EXPECT_LT(both.stateCount(), threads.stateCount());
  EXPECT_EQ(both.fullStateCount(), full.stateCount());
  EXPECT_EQ(both.fullDeadStateCount(), full.deadStates.size());
}

TEST(Symmetry, VerdictsMatchTheFullEnumeration) {
  for (unsigned n = 2; n <= 4; ++n) {
    for (NotifyModel model : {NotifyModel::Free, NotifyModel::Gated}) {
      auto tl = buildThreadLockNet(n, 1, model);
      auto vFull = petri::verifyModel(tl, enumerate(tl, Symmetry::None));
      auto vRed = petri::verifyModel(tl, enumerate(tl, Symmetry::Threads));
      EXPECT_EQ(vFull.mutualExclusion, vRed.mutualExclusion);
      EXPECT_EQ(vFull.conservation, vRed.conservation);
      EXPECT_EQ(vFull.oneBounded, vRed.oneBounded);
      EXPECT_EQ(vFull.deadlockFree, vRed.deadlockFree);
      EXPECT_EQ(vFull.allWaitingDeadReachable, vRed.allWaitingDeadReachable);
      EXPECT_EQ(vFull.t5Live, vRed.t5Live);
      EXPECT_TRUE(vRed.consistentWith(tl));
      EXPECT_TRUE(vFull.consistentWith(tl));
    }
  }
}

TEST(Symmetry, CanonicalFormIsIdempotentAndOrbitSizesSum) {
  auto tl = buildThreadLockNet(4, 1, NotifyModel::Gated);
  auto full = enumerate(tl, Symmetry::None);
  std::uint64_t orbitSum = 0;
  for (const Marking& m : full.states) {
    Marking c1 = petri::canonicalMarking(tl, m, Symmetry::Threads);
    Marking c2 = petri::canonicalMarking(tl, c1, Symmetry::Threads);
    EXPECT_EQ(c1, c2);
  }
  auto reduced = enumerate(tl, Symmetry::Threads);
  for (std::uint64_t o : reduced.orbitSizes) orbitSum += o;
  EXPECT_EQ(orbitSum, full.stateCount());
  for (std::size_t s = 0; s < reduced.stateCount(); ++s) {
    EXPECT_EQ(reduced.orbitSizes[s],
              petri::orbitSize(tl, reduced.states[s], Symmetry::Threads));
  }
}

TEST(Symmetry, DeterministicAcrossWorkerCounts) {
  auto tl = buildThreadLockNet(4, 2, NotifyModel::Gated);
  auto base = enumerate(tl, Symmetry::Threads, 1);
  for (std::size_t workers : {std::size_t{2}, std::size_t{8}}) {
    auto r = enumerate(tl, Symmetry::Threads, workers);
    ASSERT_EQ(r.stateCount(), base.stateCount()) << workers << " workers";
    EXPECT_EQ(r.states, base.states);
    EXPECT_EQ(r.edges, base.edges);
    EXPECT_EQ(r.deadStates, base.deadStates);
    for (std::size_t s = 0; s < r.stateCount(); ++s) {
      EXPECT_EQ(r.parents[s].parent, base.parents[s].parent);
      EXPECT_EQ(r.parents[s].transition, base.parents[s].transition);
    }
  }
  // The unreduced engine is equally deterministic.
  auto fullBase = enumerate(tl, Symmetry::None, 1);
  auto full8 = enumerate(tl, Symmetry::None, 8);
  EXPECT_EQ(full8.states, fullBase.states);
  EXPECT_EQ(full8.edges, fullBase.edges);
}

TEST(Symmetry, GatedEightThreadsCompletesExhaustively) {
  // The headline scaling case: 24057 concrete states collapse to 81
  // canonical ones, well inside the default cap.
  auto tl = buildThreadLockNet(8, 1, NotifyModel::Gated);
  auto r = enumerate(tl, Symmetry::Threads);
  ASSERT_TRUE(r.complete);
  EXPECT_EQ(r.stateCount(), 81u);
  EXPECT_EQ(r.fullStateCount(), 24057u);
  auto v = petri::verifyModel(tl, r);
  EXPECT_TRUE(v.allWaitingDeadReachable);
  EXPECT_TRUE(v.consistentWith(tl));
}

TEST(CrossCheck, ExplorerTracesStayInsideTheNet) {
  // fig2 (correct guards) and ff_t5_small (notify-where-notifyAll) both
  // live inside the 2-thread/1-monitor protocol; every visited marking
  // must be net-reachable and ff_t5_small's deadlock must be the FF-T5
  // all-waiting dead marking.
  for (const char* scenario : {"fig2", "ff_t5_small"}) {
    petri::ModelCrossChecker checker;
    sched::ExhaustiveExplorer::Options eo;
    eo.maxRuns = 300;
    inject::ExploreConfig cfg;
    cfg.scenario(scenario).captureRuns().explorer(eo);
    cfg.explore([&](const inject::RunView& v) {
      if (v.trace != nullptr) {
        checker.addRun(*v.trace,
                       v.result.outcome != sched::Outcome::Completed);
      }
      return true;
    });
    const petri::CrossCheckReport& rep = checker.report();
    EXPECT_TRUE(rep.ok) << scenario << ": " << rep.firstViolation;
    EXPECT_GT(rep.inScopeRuns, 0u) << scenario;
    EXPECT_GT(rep.markingsChecked, 0u) << scenario;
  }
}

TEST(CrossCheck, FailureStatesGetTheGatedDeadnessCheck) {
  petri::ModelCrossChecker checker;
  sched::ExhaustiveExplorer::Options eo;
  eo.maxRuns = 300;
  inject::ExploreConfig cfg;
  cfg.scenario("ff_t5_small").captureRuns().explorer(eo);
  cfg.explore([&](const inject::RunView& v) {
    if (v.trace != nullptr) {
      checker.addRun(*v.trace,
                     v.result.outcome != sched::Outcome::Completed);
    }
    return true;
  });
  const petri::CrossCheckReport& rep = checker.report();
  EXPECT_TRUE(rep.ok) << rep.firstViolation;
  EXPECT_GT(rep.failureStatesChecked, 0u);
}

TEST(CrossCheck, NestedMonitorsAreOutOfScopeNotViolations) {
  // lock_order nests two monitors — outside the Figure-1 protocol, so the
  // checker must count it out of scope instead of flagging it.
  petri::ModelCrossChecker checker;
  sched::ExhaustiveExplorer::Options eo;
  eo.maxRuns = 100;
  inject::ExploreConfig cfg;
  cfg.scenario("lock_order").captureRuns().explorer(eo);
  cfg.explore([&](const inject::RunView& v) {
    if (v.trace != nullptr) {
      checker.addRun(*v.trace,
                     v.result.outcome != sched::Outcome::Completed);
    }
    return true;
  });
  const petri::CrossCheckReport& rep = checker.report();
  EXPECT_TRUE(rep.ok) << rep.firstViolation;
  EXPECT_GT(rep.outOfScopeRuns, 0u);
  EXPECT_EQ(rep.violations, 0u);
}

TEST(CrossCheck, ReplayRejectsIllegalSequences) {
  // A hand-corrupted trace (double acquire) is a violation, not a crash.
  namespace ev = confail::events;
  ev::Trace trace;
  auto push = [&trace](ev::ThreadId t, ev::EventKind k) {
    ev::Event e;
    e.thread = t;
    e.monitor = 0;
    e.kind = k;
    trace.record(e);
  };
  push(0, ev::EventKind::LockRequest);
  push(0, ev::EventKind::LockAcquire);
  push(1, ev::EventKind::LockRequest);
  push(1, ev::EventKind::LockAcquire);
  petri::ModelCrossChecker checker;
  checker.addRun(trace, false);
  EXPECT_FALSE(checker.report().ok);
  EXPECT_EQ(checker.report().violations, 1u);
}
