// Property tests for the virtual scheduler and explorer:
//   * replay fidelity: any recorded schedule replays to the identical
//     interleaving (swept over seeds and thread counts);
//   * explorer completeness: on a program of K independent single-yield
//     threads the number of distinct executions equals the number of
//     distinct interleavings (multinomial), and the explorer enumerates
//     exactly that many;
//   * strategies always pick from the runnable set.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <tuple>

#include <algorithm>

#include "confail/sched/explorer.hpp"
#include "confail/support/rng.hpp"
#include "confail/sched/virtual_scheduler.hpp"

namespace sched = confail::sched;
using confail::events::ThreadId;
using sched::Outcome;
using sched::VirtualScheduler;

namespace {

struct ReplayParam {
  std::uint64_t seed;
  int threads;
  int yieldsPerThread;
};

std::string replayName(const testing::TestParamInfo<ReplayParam>& info) {
  return "seed" + std::to_string(info.param.seed) + "_t" +
         std::to_string(info.param.threads) + "_y" +
         std::to_string(info.param.yieldsPerThread);
}

// Each thread appends its letter then yields, repeatedly; the resulting
// word is a complete record of the interleaving.
std::string runWord(sched::Strategy& strategy, int threads, int yields,
                    sched::RunResult* outResult = nullptr) {
  VirtualScheduler s(strategy);
  std::string word;
  for (int t = 0; t < threads; ++t) {
    s.spawn(std::string(1, static_cast<char>('a' + t)),
            [&s, &word, t, yields] {
              for (int i = 0; i < yields; ++i) {
                word.push_back(static_cast<char>('a' + t));
                s.yield();
              }
            });
  }
  auto r = s.run();
  EXPECT_EQ(r.outcome, Outcome::Completed);
  if (outResult) *outResult = r;
  return word;
}

}  // namespace

class ReplaySweep : public testing::TestWithParam<ReplayParam> {};

TEST_P(ReplaySweep, RecordedScheduleReplaysIdentically) {
  const ReplayParam& p = GetParam();
  sched::RandomWalkStrategy random(p.seed);
  sched::RunResult original;
  std::string word1 = runWord(random, p.threads, p.yieldsPerThread, &original);

  sched::PrefixReplayStrategy replay(original.schedule);
  std::string word2 = runWord(replay, p.threads, p.yieldsPerThread);
  EXPECT_EQ(word1, word2);
}

TEST_P(ReplaySweep, SameSeedSameWordDifferentSeedUsuallyDiffers) {
  const ReplayParam& p = GetParam();
  sched::RandomWalkStrategy a(p.seed), b(p.seed), c(p.seed + 1000);
  std::string w1 = runWord(a, p.threads, p.yieldsPerThread);
  std::string w2 = runWord(b, p.threads, p.yieldsPerThread);
  std::string w3 = runWord(c, p.threads, p.yieldsPerThread);
  EXPECT_EQ(w1, w2);
  if (p.threads > 1 && p.yieldsPerThread >= 4) {
    EXPECT_NE(w1, w3) << "different seeds produced identical interleavings "
                         "(possible but vanishingly unlikely at this size)";
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndShapes, ReplaySweep,
    testing::ValuesIn([] {
      std::vector<ReplayParam> v;
      for (std::uint64_t seed : {1ull, 7ull, 1234ull}) {
        for (int threads : {1, 2, 3, 5}) {
          for (int yields : {1, 4, 9}) {
            v.push_back(ReplayParam{seed, threads, yields});
          }
        }
      }
      return v;
    }()),
    replayName);

// ---------------------------------------------------------------------------
// Explorer completeness against the closed-form interleaving count.
// ---------------------------------------------------------------------------

namespace {

struct ExploreParam {
  int threads;
  int yields;
};

std::string exploreName(const testing::TestParamInfo<ExploreParam>& info) {
  return "t" + std::to_string(info.param.threads) + "_y" +
         std::to_string(info.param.yields);
}

// Number of interleavings of `threads` sequences of length `steps` each:
// (threads*steps)! / (steps!)^threads.
std::uint64_t multinomial(int threads, int steps) {
  // Build iteratively to avoid overflow for the small sizes tested.
  std::uint64_t result = 1;
  int placed = 0;
  for (int t = 0; t < threads; ++t) {
    for (int k = 1; k <= steps; ++k) {
      result = result * static_cast<std::uint64_t>(placed + k) /
               static_cast<std::uint64_t>(k);
    }
    placed += steps;
  }
  return result;
}

}  // namespace

class ExplorerSweep : public testing::TestWithParam<ExploreParam> {};

TEST_P(ExplorerSweep, EnumeratesEveryDistinctInterleavingExactlyOnce) {
  const ExploreParam& p = GetParam();
  // Each thread does `yields` units of work, each unit = letter + yield.
  // Every decision point is a branch, so the explorer should enumerate
  // exactly multinomial(threads, yields) distinct words, each once.
  sched::ExhaustiveExplorer::Options opts;
  opts.maxRuns = 100000;
  sched::ExhaustiveExplorer explorer(opts);

  std::set<std::vector<ThreadId>> schedules;
  auto stats = explorer.explore(
      [&p](VirtualScheduler& s) {
        for (int t = 0; t < p.threads; ++t) {
          s.spawn(std::string(1, static_cast<char>('a' + t)),
                  [&s, yields = p.yields] {
                    for (int i = 0; i < yields; ++i) s.yield();
                  });
        }
      },
      [&schedules](const std::vector<ThreadId>& schedule,
                   const sched::RunResult&) {
        schedules.insert(schedule);
        return true;
      });

  EXPECT_TRUE(stats.exhausted);
  EXPECT_EQ(stats.completed, stats.runs);
  // The schedule fully determines the interleaving for this program, so
  // the number of distinct schedules must equal the closed-form count —
  // and every executed schedule must be distinct (no duplicated work).
  // Each thread is scheduled yields+1 times (each yield plus the final
  // run-to-completion segment), so the interleaving count is the
  // multinomial over segment sequences of length yields+1.
  EXPECT_EQ(stats.runs, multinomial(p.threads, p.yields + 1));
  EXPECT_EQ(schedules.size(), stats.runs);
}

INSTANTIATE_TEST_SUITE_P(
    SmallShapes, ExplorerSweep,
    testing::ValuesIn(std::vector<ExploreParam>{
        {1, 3},   // 1 interleaving
        {2, 1},   // C(4,2)   = 6
        {2, 2},   // C(6,3)   = 20
        {2, 3},   // C(8,4)   = 70
        {3, 1},   // 6!/2!^3  = 90
        {2, 4},   // C(10,5)  = 252
        {3, 2},   // 9!/3!^3  = 1680
    }),
    exploreName);

// ---------------------------------------------------------------------------
// Strategy contract: always pick from the runnable set (fuzzed).
// ---------------------------------------------------------------------------

class StrategyContractSweep : public testing::TestWithParam<std::uint64_t> {};

TEST_P(StrategyContractSweep, AllStrategiesPickRunnableThreads) {
  const std::uint64_t seed = GetParam();
  confail::Xoshiro256 rng(seed);
  sched::RandomWalkStrategy random(seed);
  sched::RoundRobinStrategy rr;
  sched::PctStrategy pct(seed, 4, 200);
  for (ThreadId t = 0; t < 8; ++t) pct.onSpawn(t);

  for (int i = 0; i < 300; ++i) {
    // Random non-empty ascending subset of {0..7}.
    std::vector<ThreadId> runnable;
    for (ThreadId t = 0; t < 8; ++t) {
      if (rng.chance(0.4)) runnable.push_back(t);
    }
    if (runnable.empty()) runnable.push_back(static_cast<ThreadId>(rng.below(8)));

    for (sched::Strategy* st : std::initializer_list<sched::Strategy*>{
             &random, &rr, &pct}) {
      ThreadId pick = st->pick(runnable, static_cast<std::uint64_t>(i));
      EXPECT_TRUE(std::find(runnable.begin(), runnable.end(), pick) !=
                  runnable.end());
    }
  }
}

namespace {
std::string contractSeedName(const testing::TestParamInfo<std::uint64_t>& info) {
  return "seed" + std::to_string(info.param);
}
}  // namespace

INSTANTIATE_TEST_SUITE_P(Seeds, StrategyContractSweep,
                         testing::Values(1ull, 2ull, 3ull, 4ull),
                         contractSeedName);
