// Unit tests for the detector battery, run against real component
// executions with seeded faults: each detector must flag its target fault
// and stay quiet on the correct implementation.
#include <gtest/gtest.h>

#include "confail/components/bounded_buffer.hpp"
#include "confail/components/producer_consumer.hpp"
#include "confail/components/readers_writers.hpp"
#include "confail/detect/hb_detector.hpp"
#include "confail/detect/lock_graph.hpp"
#include "confail/detect/lockset.hpp"
#include "confail/detect/release_discipline.hpp"
#include "confail/detect/starvation.hpp"
#include "confail/detect/unnecessary_sync.hpp"
#include "confail/detect/wait_notify.hpp"
#include "confail/events/trace.hpp"
#include "confail/monitor/monitor.hpp"
#include "confail/monitor/runtime.hpp"
#include "confail/monitor/shared_var.hpp"
#include "confail/sched/virtual_scheduler.hpp"

namespace detect = confail::detect;
namespace ev = confail::events;
namespace sched = confail::sched;
using confail::components::ProducerConsumer;
using confail::monitor::Monitor;
using confail::monitor::Runtime;
using confail::monitor::SharedVar;
using confail::monitor::Synchronized;
using detect::Finding;
using detect::FindingKind;

namespace {

struct Harness {
  ev::Trace trace;
  sched::RoundRobinStrategy strategy;
  sched::VirtualScheduler sched{strategy};
  Runtime rt{trace, sched, 1};

  sched::RunResult run() { return sched.run(); }

  bool has(const std::vector<Finding>& fs, FindingKind k) const {
    for (const auto& f : fs) {
      if (f.kind == k) return true;
    }
    return false;
  }
};

}  // namespace

TEST(Lockset, FlagsUnsynchronizedSharedWrite) {
  Harness h;
  SharedVar<int> x(h.rt, "x", 0);
  for (int t = 0; t < 2; ++t) {
    h.rt.spawn("t" + std::to_string(t), [&] { x.set(x.get() + 1); });
  }
  ASSERT_TRUE(h.run().ok());
  detect::LocksetDetector d;
  auto fs = d.analyze(h.trace);
  ASSERT_TRUE(h.has(fs, FindingKind::DataRace));
  EXPECT_EQ(fs[0].var, x.id());
}

TEST(Lockset, QuietWhenConsistentlyLocked) {
  Harness h;
  Monitor m(h.rt, "m");
  SharedVar<int> x(h.rt, "x", 0);
  for (int t = 0; t < 3; ++t) {
    h.rt.spawn("t" + std::to_string(t), [&] {
      for (int i = 0; i < 5; ++i) {
        Synchronized sync(m);
        x.set(x.get() + 1);
      }
    });
  }
  ASSERT_TRUE(h.run().ok());
  detect::LocksetDetector d;
  EXPECT_TRUE(d.analyze(h.trace).empty());
}

TEST(Lockset, QuietForSingleThreadUnlocked) {
  // Exclusive state: one thread, no locks — not a race.
  Harness h;
  SharedVar<int> x(h.rt, "x", 0);
  h.rt.spawn("only", [&] {
    for (int i = 0; i < 10; ++i) x.set(x.get() + 1);
  });
  ASSERT_TRUE(h.run().ok());
  detect::LocksetDetector d;
  EXPECT_TRUE(d.analyze(h.trace).empty());
}

TEST(Lockset, ReadSharingWithoutWritesIsNotARace) {
  Harness h;
  SharedVar<int> x(h.rt, "x", 7);
  h.rt.spawn("writer-first", [&] { x.set(8); });
  for (int t = 0; t < 3; ++t) {
    h.rt.spawn("r" + std::to_string(t), [&] { (void)x.get(); });
  }
  ASSERT_TRUE(h.run().ok());
  // Writer runs first (round-robin, spawn order), then read-only sharing.
  detect::LocksetDetector d;
  EXPECT_TRUE(d.analyze(h.trace).empty());
}

TEST(Lockset, FlagsProducerConsumerSkipSyncMutant) {
  Harness h;
  ProducerConsumer::Faults f;
  f.skipSync = true;
  ProducerConsumer pc(h.rt, f);
  h.rt.spawn("p", [&] { pc.send("ab"); });
  h.rt.spawn("c", [&] {
    pc.receive();
    pc.receive();
  });
  ASSERT_TRUE(h.run().ok());
  detect::LocksetDetector d;
  EXPECT_TRUE(h.has(d.analyze(h.trace), FindingKind::DataRace));
}

TEST(Lockset, QuietOnCorrectProducerConsumer) {
  Harness h;
  ProducerConsumer pc(h.rt);
  h.rt.spawn("p", [&] { pc.send("ab"); });
  h.rt.spawn("c", [&] {
    pc.receive();
    pc.receive();
  });
  ASSERT_TRUE(h.run().ok());
  detect::LocksetDetector lock;
  detect::HbDetector hb;
  detect::WaitNotifyAnalyzer wn;
  detect::ReleaseDisciplineDetector rd;
  EXPECT_TRUE(lock.analyze(h.trace).empty());
  EXPECT_TRUE(hb.analyze(h.trace).empty());
  EXPECT_TRUE(wn.analyze(h.trace).empty());
  EXPECT_TRUE(rd.analyze(h.trace).empty());
}

TEST(HappensBefore, FlagsTrulyUnorderedAccesses) {
  Harness h;
  SharedVar<int> x(h.rt, "x", 0);
  for (int t = 0; t < 2; ++t) {
    h.rt.spawn("t" + std::to_string(t), [&] { x.set(1); });
  }
  ASSERT_TRUE(h.run().ok());
  detect::HbDetector d;
  EXPECT_TRUE(h.has(d.analyze(h.trace), FindingKind::DataRace));
}

TEST(HappensBefore, MonitorOrderingSuppressesFalsePositives) {
  Harness h;
  Monitor m(h.rt, "m");
  SharedVar<int> x(h.rt, "x", 0);
  for (int t = 0; t < 2; ++t) {
    h.rt.spawn("t" + std::to_string(t), [&] {
      Synchronized sync(m);
      x.set(x.get() + 1);
    });
  }
  ASSERT_TRUE(h.run().ok());
  detect::HbDetector d;
  EXPECT_TRUE(d.analyze(h.trace).empty());
}

TEST(HappensBefore, SpawnEdgeOrdersParentAndChild) {
  Harness h;
  auto x = std::make_shared<SharedVar<int>>(h.rt, "x", 0);
  h.rt.spawn("parent", [&h, x] {
    x->set(1);  // before spawning the child: ordered by the spawn edge
    h.rt.spawn("child", [x] { x->set(2); });
  });
  ASSERT_TRUE(h.run().ok());
  detect::HbDetector d;
  EXPECT_TRUE(d.analyze(h.trace).empty());
}

TEST(HappensBefore, WaitNotifyCreatesOrdering) {
  Harness h;
  Monitor m(h.rt, "m");
  SharedVar<int> x(h.rt, "x", 0);
  bool ready = false;
  h.rt.spawn("consumer", [&] {
    Synchronized sync(m);
    while (!ready) m.wait();
    x.set(x.get() + 1);  // ordered after the producer's write via monitor
  });
  h.rt.spawn("producer", [&] {
    Synchronized sync(m);
    x.set(42);
    ready = true;
    m.notifyAll();
  });
  ASSERT_TRUE(h.run().ok());
  detect::HbDetector d;
  EXPECT_TRUE(d.analyze(h.trace).empty());
}

TEST(LockGraph, FlagsInconsistentAcquisitionOrder) {
  Harness h;
  Monitor m1(h.rt, "m1"), m2(h.rt, "m2");
  // Serialized execution (no deadlock manifests) but inverted order:
  // the hazard is latent, which is exactly what the lock graph catches.
  bool abDone = false;
  h.rt.spawn("ab", [&] {
    Synchronized a(m1);
    Synchronized b(m2);
    abDone = true;
  });
  h.rt.spawn("ba", [&] {
    while (!abDone) h.rt.schedulePoint();
    Synchronized b(m2);
    Synchronized a(m1);
  });
  ASSERT_TRUE(h.run().ok());  // completes — the hazard is latent
  detect::LockOrderGraph d;
  auto fs = d.analyze(h.trace);
  ASSERT_TRUE(h.has(fs, FindingKind::DeadlockCycle));
  EXPECT_NE(fs[0].message.find("m1"), std::string::npos);
  EXPECT_NE(fs[0].message.find("m2"), std::string::npos);
}

TEST(LockGraph, QuietOnConsistentNesting) {
  Harness h;
  Monitor m1(h.rt, "m1"), m2(h.rt, "m2");
  for (int t = 0; t < 2; ++t) {
    h.rt.spawn("t" + std::to_string(t), [&] {
      Synchronized a(m1);
      Synchronized b(m2);
    });
  }
  ASSERT_TRUE(h.run().ok());
  detect::LockOrderGraph d;
  EXPECT_TRUE(d.analyze(h.trace).empty());
}

TEST(WaitNotify, FlagsWaitingForever) {
  Harness h;
  Monitor m(h.rt, "m");
  h.rt.spawn("hang", [&] {
    Synchronized sync(m);
    m.wait();
  });
  auto r = h.run();
  EXPECT_EQ(r.outcome, sched::Outcome::Deadlock);
  detect::WaitNotifyAnalyzer d;
  auto fs = d.analyze(h.trace);
  EXPECT_TRUE(h.has(fs, FindingKind::WaitingForever));
}

TEST(WaitNotify, FlagsLostNotify) {
  Harness h;
  Monitor m(h.rt, "m");
  h.rt.spawn("notify-first", [&] {
    Synchronized sync(m);
    m.notifyOne();  // nobody waiting: lost
  });
  h.rt.spawn("wait-later", [&] {
    m.lock();
    m.wait();
    m.unlock();
  });
  EXPECT_EQ(h.run().outcome, sched::Outcome::Deadlock);
  detect::WaitNotifyAnalyzer d;
  auto fs = d.analyze(h.trace);
  EXPECT_TRUE(h.has(fs, FindingKind::LostNotify));
  EXPECT_TRUE(h.has(fs, FindingKind::WaitingForever));
}

TEST(WaitNotify, FlagsNotifySingleInsufficient) {
  Harness h;
  Monitor m(h.rt, "m");
  bool go = false;
  for (int i = 0; i < 3; ++i) {
    h.rt.spawn("w" + std::to_string(i), [&] {
      Synchronized sync(m);
      while (!go) m.wait();
    });
  }
  h.rt.spawn("single", [&] {
    for (int k = 0; k < 10; ++k) h.rt.schedulePoint();
    Synchronized sync(m);
    go = true;
    m.notifyOne();
  });
  EXPECT_EQ(h.run().outcome, sched::Outcome::Deadlock);
  detect::WaitNotifyAnalyzer d;
  EXPECT_TRUE(h.has(d.analyze(h.trace), FindingKind::NotifySingleInsufficient));
}

TEST(WaitNotify, FlagsIfInsteadOfWhileViaGuardDiscipline) {
  // The if-mutant wakes and proceeds without re-evaluating its guard.
  Harness h;
  ProducerConsumer::Faults f;
  f.ifInsteadOfWhile = true;
  ProducerConsumer pc(h.rt, f);
  h.rt.spawn("c", [&] { pc.receive(); });
  h.rt.spawn("p", [&] {
    for (int k = 0; k < 4; ++k) h.rt.schedulePoint();
    pc.send("x");
  });
  ASSERT_TRUE(h.run().ok());
  detect::WaitNotifyAnalyzer d;
  EXPECT_TRUE(h.has(d.analyze(h.trace), FindingKind::GuardNotRechecked));
}

TEST(WaitNotify, WhileLoopSatisfiesGuardDiscipline) {
  Harness h;
  ProducerConsumer pc(h.rt);
  h.rt.spawn("c", [&] { pc.receive(); });
  h.rt.spawn("p", [&] {
    for (int k = 0; k < 4; ++k) h.rt.schedulePoint();
    pc.send("x");
  });
  ASSERT_TRUE(h.run().ok());
  detect::WaitNotifyAnalyzer d;
  EXPECT_FALSE(h.has(d.analyze(h.trace), FindingKind::GuardNotRechecked));
}

TEST(Starvation, FlagsStarvedRequestUnderLifoGrant) {
  // Table 1, FF-T2 second mode: "one or more threads repeatedly acquire the
  // lock being requested by this thread".  Two aggressors hand the monitor
  // to each other via notify/wait; under a LIFO (maximally unfair) grant
  // policy the entry queue always holds a fresher aggressor than the
  // victim, whose request is never served.
  Harness h;
  Monitor::Options mopts;
  mopts.grantPolicy = confail::monitor::SelectPolicy::Lifo;
  Monitor m(h.rt, "hot", mopts);
  auto aggressor = [&] {
    m.lock();
    // Hold the lock across several yields so the victim (and the other
    // aggressor) queue on the entry list before the ping-pong starts.
    for (int k = 0; k < 6; ++k) h.rt.schedulePoint();
    for (int i = 0; i < 120; ++i) {
      m.notifyOne();
      m.wait();
    }
    m.unlock();
  };
  h.rt.spawn("aggressor-0", aggressor);
  h.rt.spawn("victim", [&] { Synchronized sync(m); });
  h.rt.spawn("aggressor-1", aggressor);
  // The final wait of one aggressor is never notified, so the run ends in
  // a deadlock — irrelevant here; the starvation already happened.
  h.run();
  detect::StarvationDetector d(/*grantThreshold=*/50);
  EXPECT_TRUE(h.has(d.analyze(h.trace), FindingKind::Starvation));
}

TEST(Starvation, QuietUnderFifoGrant) {
  Harness h;
  Monitor m(h.rt, "fair");
  for (int t = 0; t < 3; ++t) {
    h.rt.spawn("t" + std::to_string(t), [&] {
      for (int i = 0; i < 60; ++i) {
        Synchronized sync(m);
      }
    });
  }
  ASSERT_TRUE(h.run().ok());
  detect::StarvationDetector d(50);
  EXPECT_TRUE(d.analyze(h.trace).empty());
}

TEST(Starvation, FlagsLockHeldForever) {
  Harness h;
  Monitor m(h.rt, "stuck");
  h.rt.spawn("holder", [&] {
    m.lock();
    for (;;) h.rt.schedulePoint();  // never releases
  });
  h.rt.spawn("requester", [&] {
    Synchronized sync(m);
  });
  sched::VirtualScheduler::Options o;
  auto r = h.run();
  EXPECT_EQ(r.outcome, sched::Outcome::StepLimit);
  detect::StarvationDetector d;
  EXPECT_TRUE(h.has(d.analyze(h.trace), FindingKind::LockHeldForever));
}

TEST(UnnecessarySync, FlagsSingleThreadedLockedComponent) {
  Harness h;
  Monitor m(h.rt, "lonely");
  SharedVar<int> x(h.rt, "x", 0);
  h.rt.spawn("only", [&] {
    for (int i = 0; i < 5; ++i) {
      Synchronized sync(m);
      x.set(x.get() + 1);
    }
  });
  ASSERT_TRUE(h.run().ok());
  detect::UnnecessarySyncDetector d;
  auto fs = d.analyze(h.trace);
  ASSERT_TRUE(h.has(fs, FindingKind::UnnecessarySync));
  EXPECT_EQ(fs[0].monitor, m.id());
}

TEST(UnnecessarySync, QuietWhenContended) {
  Harness h;
  Monitor m(h.rt, "shared");
  SharedVar<int> x(h.rt, "x", 0);
  for (int t = 0; t < 2; ++t) {
    h.rt.spawn("t" + std::to_string(t), [&] {
      Synchronized sync(m);
      x.set(x.get() + 1);
    });
  }
  ASSERT_TRUE(h.run().ok());
  detect::UnnecessarySyncDetector d;
  EXPECT_TRUE(d.analyze(h.trace).empty());
}

TEST(UnnecessarySync, QuietWhenWaitNotifyUsed) {
  Harness h;
  Monitor m(h.rt, "cv");
  h.rt.spawn("self-notify", [&] {
    Synchronized sync(m);
    m.notifyAll();  // even single-threaded, notify implies protocol use
  });
  ASSERT_TRUE(h.run().ok());
  detect::UnnecessarySyncDetector d;
  EXPECT_TRUE(d.analyze(h.trace).empty());
}

TEST(ReleaseDiscipline, FlagsEarlyReleaseSendMutant) {
  Harness h;
  ProducerConsumer::Faults f;
  f.earlyReleaseSend = true;
  ProducerConsumer pc(h.rt, f);
  h.rt.spawn("p", [&] { pc.send("x"); });
  h.rt.spawn("c", [&] { pc.receive(); });
  ASSERT_TRUE(h.run().ok());
  detect::ReleaseDisciplineDetector d;
  EXPECT_TRUE(h.has(d.analyze(h.trace), FindingKind::EarlyRelease));
}

TEST(ReleaseDiscipline, QuietOnDisciplinedComponent) {
  Harness h;
  ProducerConsumer pc(h.rt);
  h.rt.spawn("p", [&] { pc.send("x"); });
  h.rt.spawn("c", [&] { pc.receive(); });
  ASSERT_TRUE(h.run().ok());
  detect::ReleaseDisciplineDetector d;
  EXPECT_TRUE(d.analyze(h.trace).empty());
}

TEST(Findings, DescribeMentionsNames) {
  Harness h;
  SharedVar<int> x(h.rt, "hot-var", 0);
  for (int t = 0; t < 2; ++t) {
    h.rt.spawn("racer-" + std::to_string(t), [&] { x.set(1); });
  }
  ASSERT_TRUE(h.run().ok());
  detect::LocksetDetector d;
  auto fs = d.analyze(h.trace);
  ASSERT_FALSE(fs.empty());
  std::string desc = fs[0].describe(h.trace);
  EXPECT_NE(desc.find("data-race"), std::string::npos);
  EXPECT_NE(desc.find("hot-var"), std::string::npos);
  EXPECT_NE(desc.find("racer-"), std::string::npos);
}
