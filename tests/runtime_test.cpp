// Tests for the Runtime bridge itself: id registration, method-scope
// stacks and event attribution, spawn bookkeeping in both modes, the
// noise hook, join semantics, and mode-restriction errors.
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "confail/events/trace.hpp"
#include "confail/monitor/monitor.hpp"
#include "confail/monitor/runtime.hpp"
#include "confail/monitor/shared_var.hpp"
#include "confail/sched/virtual_scheduler.hpp"

namespace ev = confail::events;
namespace sched = confail::sched;
using confail::monitor::MethodScope;
using confail::monitor::Runtime;

namespace {
struct Harness {
  ev::Trace trace;
  sched::RoundRobinStrategy strategy;
  sched::VirtualScheduler sched{strategy};
  Runtime rt{trace, sched, 1};
};
}  // namespace

TEST(Runtime, RegistersDenseIdsAndNames) {
  Harness h;
  auto m0 = h.rt.registerMonitor("alpha");
  auto m1 = h.rt.registerMonitor("beta");
  auto v0 = h.rt.registerVar("x");
  auto f0 = h.rt.registerMethod("m.f");
  EXPECT_EQ(m0, 0u);
  EXPECT_EQ(m1, 1u);
  EXPECT_EQ(v0, 0u);
  EXPECT_EQ(f0, 0u);
  EXPECT_EQ(h.trace.monitorName(m1), "beta");
  EXPECT_EQ(h.trace.varName(v0), "x");
  EXPECT_EQ(h.trace.methodName(f0), "m.f");
}

TEST(Runtime, MethodScopeTagsEventsWithInnermostMethod) {
  Harness h;
  auto outer = h.rt.registerMethod("outer");
  auto inner = h.rt.registerMethod("inner");
  auto var = h.rt.registerVar("v");
  h.rt.spawn("t", [&] {
    MethodScope a(h.rt, outer);
    h.rt.emit(ev::EventKind::Read, ev::kNoMonitor, var);
    {
      MethodScope b(h.rt, inner);
      h.rt.emit(ev::EventKind::Write, ev::kNoMonitor, var);
    }
    h.rt.emit(ev::EventKind::Read, ev::kNoMonitor, var);
  });
  ASSERT_TRUE(h.sched.run().ok());
  std::vector<ev::MethodId> accessMethods;
  for (const auto& e : h.trace.events()) {
    if (e.kind == ev::EventKind::Read || e.kind == ev::EventKind::Write) {
      accessMethods.push_back(e.method);
    }
  }
  EXPECT_EQ(accessMethods,
            (std::vector<ev::MethodId>{outer, inner, outer}));
}

TEST(Runtime, SpawnEmitsLifecycleEvents) {
  Harness h;
  h.rt.spawn("parent", [&] {
    h.rt.spawn("child", [] {});
  });
  ASSERT_TRUE(h.sched.run().ok());
  std::size_t starts = 0, ends = 0, spawns = 0;
  for (const auto& e : h.trace.events()) {
    starts += e.kind == ev::EventKind::ThreadStart;
    ends += e.kind == ev::EventKind::ThreadEnd;
    spawns += e.kind == ev::EventKind::ThreadSpawn;
  }
  EXPECT_EQ(starts, 2u);
  EXPECT_EQ(ends, 2u);
  EXPECT_EQ(spawns, 1u);  // only the in-run spawn has a logical parent
  EXPECT_EQ(h.trace.threadName(0), "parent");
  EXPECT_EQ(h.trace.threadName(1), "child");
}

TEST(Runtime, JoinOrdersParentAfterChild) {
  Harness h;
  std::vector<int> order;
  auto worker = h.rt.spawn("worker", [&] {
    for (int i = 0; i < 3; ++i) h.rt.schedulePoint();
    order.push_back(1);
  });
  h.rt.spawn("joiner", [&] {
    h.rt.join(worker);
    order.push_back(2);
  });
  ASSERT_TRUE(h.sched.run().ok());
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(Runtime, JoinRejectedInRealMode) {
  ev::Trace trace;
  Runtime rt(trace, 1);
  EXPECT_THROW(rt.join(0), confail::UsageError);
}

TEST(Runtime, SchedulerAccessorRejectedInRealMode) {
  ev::Trace trace;
  Runtime rt(trace, 1);
  EXPECT_THROW(rt.scheduler(), confail::UsageError);
}

TEST(Runtime, RealModeAutoRegistersCallingThread) {
  ev::Trace trace;
  Runtime rt(trace, 1);
  ev::ThreadId me = rt.currentThread();
  EXPECT_NE(me, ev::kNoThread);
  EXPECT_EQ(rt.currentThread(), me);  // stable on repeat
}

TEST(Runtime, RealModeSpawnAssignsDistinctIds) {
  ev::Trace trace;
  Runtime rt(trace, 1);
  std::mutex mu;
  std::set<ev::ThreadId> ids;
  for (int i = 0; i < 4; ++i) {
    rt.spawn("t" + std::to_string(i), [&] {
      std::lock_guard<std::mutex> g(mu);
      ids.insert(rt.currentThread());
    });
  }
  rt.joinAll();
  EXPECT_EQ(ids.size(), 4u);
}

TEST(Runtime, NoiseHookDoesNotAffectCorrectness) {
  ev::Trace trace;
  Runtime rt(trace, 5);
  rt.setNoise(0.5);  // real mode: random std::this_thread::yield at points
  confail::monitor::Monitor m(rt, "m");
  int counter = 0;
  for (int t = 0; t < 4; ++t) {
    rt.spawn("t" + std::to_string(t), [&] {
      for (int i = 0; i < 200; ++i) {
        confail::monitor::Synchronized sync(m);
        ++counter;
      }
    });
  }
  rt.joinAll();
  EXPECT_EQ(counter, 800);
}

TEST(Runtime, DeterministicPolicyRngPerSeed) {
  auto draw = [](std::uint64_t seed) {
    ev::Trace trace;
    sched::RoundRobinStrategy strategy;
    sched::VirtualScheduler s(strategy);
    Runtime rt(trace, s, seed);
    std::vector<std::uint64_t> values;
    for (int i = 0; i < 10; ++i) values.push_back(rt.rngBelow(1000));
    return values;
  };
  EXPECT_EQ(draw(42), draw(42));
  EXPECT_NE(draw(42), draw(43));
}

TEST(Runtime, EmitForAttachesTargetThreadsMethod) {
  Harness h;
  auto method = h.rt.registerMethod("target.method");
  ev::ThreadId waiterId = 0;
  h.rt.spawn("waiter", [&] {
    MethodScope scope(h.rt, method);
    for (int i = 0; i < 4; ++i) h.rt.schedulePoint();
  });
  h.rt.spawn("emitter", [&] {
    // Emit an event on behalf of the waiter while it sits in its method.
    h.rt.emitFor(waiterId, ev::EventKind::Notified, ev::kNoMonitor, 0);
  });
  ASSERT_TRUE(h.sched.run().ok());
  for (const auto& e : h.trace.events()) {
    if (e.kind == ev::EventKind::Notified) {
      EXPECT_EQ(e.thread, waiterId);
      EXPECT_EQ(e.method, method);
    }
  }
}
