// AlarmClock monitor: correct sleep/wake timing, multi-sleeper fan-out,
// mutant behaviour (skipNotify, notifyOne), and trace cleanliness.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "confail/components/alarm_clock.hpp"
#include "confail/detect/suite.hpp"
#include "confail/events/trace.hpp"
#include "confail/monitor/runtime.hpp"
#include "confail/petri/trace_validator.hpp"
#include "confail/sched/virtual_scheduler.hpp"

namespace comps = confail::components;
namespace ev = confail::events;
namespace sched = confail::sched;
using confail::monitor::Runtime;

namespace {
struct Harness {
  explicit Harness(std::uint64_t seed = 1)
      : strategy(seed), sched(strategy), rt(trace, sched, seed) {}
  ev::Trace trace;
  sched::RandomWalkStrategy strategy;
  sched::VirtualScheduler sched;
  Runtime rt;
};
}  // namespace

TEST(AlarmClock, SleeperWakesExactlyAtDeadline) {
  Harness h;
  comps::AlarmClock clock(h.rt, "alarm");
  long wokeAt = -1;
  h.rt.spawn("sleeper", [&] { wokeAt = clock.wakeMe(3); });
  h.rt.spawn("ticker", [&] {
    for (int i = 0; i < 5; ++i) {
      for (int k = 0; k < 3; ++k) h.rt.schedulePoint();
      clock.tick();
    }
  });
  ASSERT_EQ(h.sched.run().outcome, sched::Outcome::Completed);
  EXPECT_EQ(wokeAt, 3);
  EXPECT_EQ(clock.now(), 5);
}

TEST(AlarmClock, MultipleSleepersDistinctDeadlines) {
  for (std::uint64_t seed : {1ull, 5ull, 9ull}) {
    Harness h(seed);
    comps::AlarmClock clock(h.rt, "alarm");
    std::vector<long> wokeAt(3, -1);
    for (int i = 0; i < 3; ++i) {
      h.rt.spawn("sleeper" + std::to_string(i),
                 [&, i] { wokeAt[static_cast<std::size_t>(i)] = clock.wakeMe(i + 1); });
    }
    h.rt.spawn("ticker", [&] {
      for (int i = 0; i < 4; ++i) {
        for (int k = 0; k < 5; ++k) h.rt.schedulePoint();
        clock.tick();
      }
    });
    ASSERT_EQ(h.sched.run().outcome, sched::Outcome::Completed) << "seed " << seed;
    // A sleeper may be scheduled late relative to ticks already elapsed,
    // but can never wake before its deadline.
    for (int i = 0; i < 3; ++i) {
      EXPECT_GE(wokeAt[static_cast<std::size_t>(i)], i + 1) << "seed " << seed;
    }
  }
}

TEST(AlarmClock, ZeroTicksReturnsImmediately) {
  Harness h;
  comps::AlarmClock clock(h.rt, "alarm");
  long wokeAt = -1;
  h.rt.spawn("sleeper", [&] { wokeAt = clock.wakeMe(0); });
  ASSERT_EQ(h.sched.run().outcome, sched::Outcome::Completed);
  EXPECT_EQ(wokeAt, 0);
}

TEST(AlarmClock, SkipNotifyMutantHangsSleepers) {
  Harness h;
  comps::AlarmClock::Faults f;
  f.skipNotify = true;
  comps::AlarmClock clock(h.rt, "alarm", f);
  h.rt.spawn("sleeper", [&] { (void)clock.wakeMe(1); });
  h.rt.spawn("ticker", [&] {
    for (int i = 0; i < 3; ++i) {
      for (int k = 0; k < 3; ++k) h.rt.schedulePoint();
      clock.tick();
    }
  });
  auto r = h.sched.run();
  ASSERT_EQ(r.outcome, sched::Outcome::Deadlock);
  ASSERT_EQ(r.blocked.size(), 1u);
  EXPECT_EQ(r.blocked[0].kind, sched::BlockKind::CondWait);
}

TEST(AlarmClock, NotifyOneMutantCanStrandASleeperPastItsDeadline) {
  // With two sleepers due at the same tick, notify() wakes only one; the
  // woken one's guard is satisfied and it leaves WITHOUT renotifying, so
  // the other sleeps past its deadline (woken only by a later tick, or
  // never if ticks stop).
  Harness h;
  comps::AlarmClock::Faults f;
  f.notifyOneOnly = true;
  comps::AlarmClock clock(h.rt, "alarm", f);
  long woke0 = -1, woke1 = -1;
  h.rt.spawn("s0", [&] { woke0 = clock.wakeMe(1); });
  h.rt.spawn("s1", [&] { woke1 = clock.wakeMe(1); });
  h.rt.spawn("ticker", [&] {
    for (int k = 0; k < 6; ++k) h.rt.schedulePoint();
    clock.tick();  // both due; only one is notified
  });
  auto r = h.sched.run();
  // One sleeper wakes at 1; the other is never notified again: deadlock.
  ASSERT_EQ(r.outcome, sched::Outcome::Deadlock);
  EXPECT_TRUE((woke0 == 1) != (woke1 == 1))
      << "exactly one sleeper should have woken, got " << woke0 << "/"
      << woke1;
}

TEST(AlarmClock, TraceIsModelConformantAndClean) {
  Harness h(4);
  comps::AlarmClock clock(h.rt, "alarm");
  for (int i = 0; i < 2; ++i) {
    h.rt.spawn("sleeper" + std::to_string(i),
               [&, i] { (void)clock.wakeMe(i + 1); });
  }
  h.rt.spawn("ticker", [&] {
    for (int i = 0; i < 3; ++i) {
      for (int k = 0; k < 4; ++k) h.rt.schedulePoint();
      clock.tick();
    }
  });
  ASSERT_EQ(h.sched.run().outcome, sched::Outcome::Completed);
  auto v = confail::petri::validateTraceAgainstModel(h.trace, clock.mon().id());
  EXPECT_TRUE(v.ok) << v.message;
  confail::detect::DetectorSuite suite;
  auto findings = suite.analyze(h.trace);
  EXPECT_TRUE(findings.empty());
}
