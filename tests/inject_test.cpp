// Tests for confail::inject: the deviation-operator library, the
// protocol-deviation detector that closes the oracle gap for EF-T2/EF-T3/
// EF-T5/FF-T3, the negative controls, and the determinism contract of
// injection under the parallel explorer.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "confail/detect/protocol_deviation.hpp"
#include "confail/detect/suite.hpp"
#include "confail/events/trace.hpp"
#include "confail/inject/campaign.hpp"
#include "confail/inject/explore_config.hpp"
#include "confail/inject/injector.hpp"
#include "confail/inject/plan.hpp"
#include "confail/monitor/runtime.hpp"
#include "confail/sched/virtual_scheduler.hpp"
#include "confail/support/assert.hpp"
#include "confail/taxonomy/taxonomy.hpp"

namespace ev = confail::events;
namespace detect = confail::detect;
namespace inject = confail::inject;
namespace sched = confail::sched;
namespace scenarios = confail::components::scenarios;
using confail::taxonomy::FailureClass;

// ---------------------------------------------------------------------------
// Plan / Injector API
// ---------------------------------------------------------------------------

TEST(InjectionPlan, EveryClassButStructuralOnesIsInjectable) {
  EXPECT_FALSE(inject::isInjectable(FailureClass::EF_T1));
  EXPECT_EQ(inject::injectableClasses().size(), 9u);
  for (FailureClass cls : inject::injectableClasses()) {
    EXPECT_TRUE(inject::isInjectable(cls));
    EXPECT_NE(inject::operatorName(cls), nullptr);
    inject::InjectionPlan p;
    p.cls = cls;
    EXPECT_NE(p.describe().find(inject::operatorName(cls)), std::string::npos)
        << p.describe();
  }
}

TEST(Injector, RejectsStructuralClass) {
  ev::Trace trace;
  sched::RoundRobinStrategy strategy;
  sched::VirtualScheduler s(strategy);
  confail::monitor::Runtime rt(trace, s, 1);
  inject::InjectionPlan plan;
  plan.cls = FailureClass::EF_T1;
  EXPECT_THROW(inject::Injector(rt, plan), confail::UsageError);
}

// ---------------------------------------------------------------------------
// ProtocolDeviationDetector on synthetic traces
// ---------------------------------------------------------------------------

namespace {

ev::Event mk(ev::ThreadId t, ev::EventKind k, ev::MonitorId m,
             std::uint64_t aux = 0, ev::MethodId method = ev::kNoMethod,
             bool flag = false) {
  ev::Event e;
  e.thread = t;
  e.kind = k;
  e.monitor = m;
  e.aux = aux;
  e.method = method;
  e.flag = flag;
  return e;
}

std::vector<detect::Finding> analyzeProtocol(const ev::Trace& trace,
                                             bool flagBarging = false) {
  detect::ProtocolDeviationDetector::Options opts;
  opts.flagBarging = flagBarging;
  detect::ProtocolDeviationDetector d(opts);
  return d.analyze(trace);
}

}  // namespace

TEST(ProtocolDeviation, FlagsSpuriousWake) {
  ev::Trace trace;
  trace.record(mk(0, ev::EventKind::WaitBegin, 0));
  trace.record(mk(0, ev::EventKind::SpuriousWake, 0));
  trace.record(mk(0, ev::EventKind::SpuriousWake, 0));  // deduped
  auto findings = analyzeProtocol(trace);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].kind, detect::FindingKind::SpuriousWakeup);
}

TEST(ProtocolDeviation, FlagsPhantomNotifyOnlyWithoutPermit) {
  {  // A Notified backed by a NotifyCall permit is legal.
    ev::Trace trace;
    trace.record(mk(1, ev::EventKind::NotifyCall, 0, /*waiters=*/1));
    trace.record(mk(0, ev::EventKind::Notified, 0));
    EXPECT_TRUE(analyzeProtocol(trace).empty());
  }
  {  // A Notified with no call behind it is a phantom.
    ev::Trace trace;
    trace.record(mk(0, ev::EventKind::Notified, 0));
    auto findings = analyzeProtocol(trace);
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].kind, detect::FindingKind::PhantomNotify);
  }
}

TEST(ProtocolDeviation, FlagsMissedWaitOnlyWithoutInterveningWait) {
  const ev::MethodId method = 0;
  {  // true guard -> wait -> true guard is the correct protocol.
    ev::Trace trace;
    trace.record(
        mk(0, ev::EventKind::GuardEval, 0, method, method, /*flag=*/true));
    trace.record(mk(0, ev::EventKind::WaitBegin, 0));
    trace.record(
        mk(0, ev::EventKind::GuardEval, 0, method, method, /*flag=*/true));
    EXPECT_TRUE(analyzeProtocol(trace).empty());
  }
  {  // two true evaluations with no wait between: the wait never fired.
    ev::Trace trace;
    trace.record(
        mk(0, ev::EventKind::GuardEval, 0, method, method, /*flag=*/true));
    trace.record(
        mk(0, ev::EventKind::GuardEval, 0, method, method, /*flag=*/true));
    auto findings = analyzeProtocol(trace);
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].kind, detect::FindingKind::MissedWait);
  }
}

TEST(ProtocolDeviation, BargingIsOptIn) {
  ev::Trace trace;
  trace.record(mk(0, ev::EventKind::LockRequest, 0));
  trace.record(mk(1, ev::EventKind::LockRequest, 0));
  trace.record(mk(1, ev::EventKind::LockAcquire, 0));  // overtakes thread 0
  EXPECT_TRUE(analyzeProtocol(trace, /*flagBarging=*/false).empty());
  auto findings = analyzeProtocol(trace, /*flagBarging=*/true);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].kind, detect::FindingKind::BargingAcquire);
}

// ---------------------------------------------------------------------------
// Detection matrix: every injectable class caught on the reference scenario
// ---------------------------------------------------------------------------

TEST(InjectionMatrix, EveryInjectableClassCaughtOnFig2) {
  const scenarios::NamedScenario* fig2 = scenarios::find("fig2");
  ASSERT_NE(fig2, nullptr);
  inject::CampaignOptions opts;
  for (FailureClass cls : inject::injectableClasses()) {
    ASSERT_TRUE(inject::planApplies(cls, *fig2));
    const inject::MatrixCell cell =
        inject::runCell(*fig2, inject::defaultPlanFor(cls, *fig2), opts);
    EXPECT_TRUE(cell.caught) << cell.plan.describe();
    EXPECT_TRUE(cell.classifierAgrees) << cell.plan.describe();
    EXPECT_GT(cell.deviatedRuns, 0u) << cell.plan.describe();
    EXPECT_FALSE(cell.caughtBy().empty()) << cell.plan.describe();
  }
}

// Negative controls: clean scenarios explored UNinjected must be silent
// under the exact detector battery the campaign uses — if a detector fires
// here, its positives above are meaningless.
TEST(InjectionMatrix, NegativeControlsAreSilent) {
  detect::DetectorSuite::Options so;
  so.flagBarging = true;
  so.starvationGrantThreshold = 20;
  detect::DetectorSuite suite(so);
  for (const scenarios::NamedScenario& sc : scenarios::registry()) {
    if (sc.faultSeeded) continue;
    sched::ExhaustiveExplorer::Options eo;
    eo.maxRuns = 4000;
    eo.maxSteps = 2000;
    eo.maxBranchDepth = 4;
    inject::ExploreConfig cfg;
    cfg.scenario(sc).captureRuns().explorer(eo);
    std::uint64_t runs = 0;
    const auto outcome = cfg.explore([&](const inject::RunView& view) {
      ++runs;
      EXPECT_EQ(view.result.outcome, sched::Outcome::Completed) << sc.name;
      EXPECT_EQ(view.deviationsApplied, 0u) << sc.name;
      if (view.trace != nullptr) {
        for (const auto& f : suite.analyze(*view.trace)) {
          ADD_FAILURE() << sc.name << ": " << f.describe(*view.trace);
        }
      }
      return true;
    });
    EXPECT_GT(runs, 0u) << sc.name;
    EXPECT_EQ(outcome.stats.deadlocks, 0u) << sc.name;
  }
}

// ---------------------------------------------------------------------------
// Determinism: same plan + same schedule prefix => same deviation => same
// findings, independent of the worker count.
// ---------------------------------------------------------------------------

namespace {

// Per-schedule signature of an injected exploration: deviation count plus
// every finding the campaign's battery produces on the run's trace.
using RunSignatures =
    std::map<std::vector<sched::ThreadId>,
             std::pair<std::uint64_t, std::vector<std::string>>>;

RunSignatures explorePlanSignatures(const inject::InjectionPlan& plan,
                                    std::size_t workers) {
  const scenarios::NamedScenario* fig2 = scenarios::find("fig2");
  detect::DetectorSuite::Options so;
  so.flagBarging = true;
  so.starvationGrantThreshold = 20;
  detect::DetectorSuite suite(so);
  sched::ExhaustiveExplorer::Options eo;
  eo.maxRuns = 500;
  eo.maxSteps = 2000;
  eo.maxBranchDepth = 4;
  eo.workers = workers;
  inject::ExploreConfig cfg;
  cfg.scenario(*fig2).plan(plan).explorer(eo);
  RunSignatures sigs;
  (void)cfg.explore([&](const inject::RunView& view) {
    std::vector<std::string> findings;
    if (view.trace != nullptr) {
      for (const auto& f : suite.analyze(*view.trace)) {
        findings.push_back(f.describe(*view.trace));
      }
    }
    sigs[view.schedule] = {view.deviationsApplied, std::move(findings)};
    return true;
  });
  return sigs;
}

}  // namespace

TEST(InjectionMatrix, DeterministicAcrossWorkerCounts) {
  for (FailureClass cls :
       {FailureClass::FF_T5, FailureClass::EF_T3, FailureClass::EF_T4}) {
    const scenarios::NamedScenario* fig2 = scenarios::find("fig2");
    const inject::InjectionPlan plan = inject::defaultPlanFor(cls, *fig2);
    const RunSignatures one = explorePlanSignatures(plan, 1);
    const RunSignatures eight = explorePlanSignatures(plan, 8);
    ASSERT_FALSE(one.empty());
    EXPECT_EQ(one, eight) << plan.describe();
  }
}

// ---------------------------------------------------------------------------
// Campaign end-to-end
// ---------------------------------------------------------------------------

TEST(Campaign, FullMatrixIsOk) {
  const inject::CampaignResult result = inject::runCampaign();
  EXPECT_TRUE(result.ok());
  EXPECT_FALSE(result.cells.empty());
  EXPECT_FALSE(result.controls.empty());
  const std::string json = result.toJson();
  EXPECT_NE(json.find("\"schema\": \"confail.injection.v1\""),
            std::string::npos);
  EXPECT_NE(json.find("\"ok\": true"), std::string::npos);
  EXPECT_NE(result.human().find("INJECTION MATRIX OK"), std::string::npos);
}
