// Parallel explorer: determinism across worker counts, fingerprint
// pruning, sleep sets, and budget-exhaustion reporting.
//
// The determinism contract under test (see docs/exploration.md):
//   * reductions off + exhausted tree -> every Stats counter AND the
//     canonical firstFailure (lexicographically smallest failing schedule)
//     are identical at any worker count;
//   * fingerprint pruning on -> counts may shift slightly with worker
//     count, but the set of distinct deadlock states is preserved, and is
//     the same set the unpruned exploration finds;
//   * the run budget is exact and firstFailure is reported even when the
//     budget dies mid-tree.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "confail/components/scenarios.hpp"
#include "confail/sched/explorer.hpp"

namespace sched = confail::sched;
namespace scenarios = confail::components::scenarios;

namespace {

using Scenario = void (*)(sched::VirtualScheduler&);

/// Hash of the blocked set of a deadlocked run: which threads are stuck,
/// why, and on what.  Two runs deadlocking in the same state (possibly via
/// different schedules) have equal signatures.
std::uint64_t deadlockSignature(const sched::RunResult& r) {
  std::uint64_t h = sched::kFpSeed;
  for (const sched::BlockedThreadInfo& b : r.blocked) {
    h = sched::fpMix(h, (static_cast<std::uint64_t>(b.id) << 32) ^
                            static_cast<std::uint64_t>(b.kind));
    h = sched::fpMix(h, b.resource);
  }
  return h;
}

struct Exploration {
  sched::ExhaustiveExplorer::Stats stats;
  std::set<std::uint64_t> deadlockSigs;
};

Exploration explore(Scenario scenario, sched::ExhaustiveExplorer::Options eo) {
  eo.maxSteps = 20000;
  sched::ExhaustiveExplorer explorer(eo);
  Exploration out;
  out.stats = explorer.explore(
      scenario, [&out](const std::vector<sched::ThreadId>&,
                       const sched::RunResult& r) {
        if (r.outcome == sched::Outcome::Deadlock) {
          out.deadlockSigs.insert(deadlockSignature(r));
        }
        return true;
      });
  return out;
}

}  // namespace

// Reductions off, exhausted tree: all counters and the canonical witness
// are identical at 1, 2 and 8 workers.  lockOrder (FF-T2) has deadlocks,
// so this also pins the canonical firstFailure across worker counts.
TEST(ParallelExplorer, LockOrderDeterministicAcrossWorkerCounts) {
  Exploration serial;
  for (std::size_t workers : {1u, 2u, 8u}) {
    sched::ExhaustiveExplorer::Options eo;
    eo.workers = workers;
    Exploration e = explore(scenarios::lockOrder, eo);
    ASSERT_TRUE(e.stats.exhausted);
    EXPECT_GT(e.stats.runs, 0u);
    EXPECT_GT(e.stats.deadlocks, 0u);
    EXPECT_EQ(e.stats.prunedBranches, 0u);  // no reductions -> zero counters
    EXPECT_EQ(e.stats.dedupedStates, 0u);
    EXPECT_FALSE(e.stats.firstFailure.empty());
    EXPECT_EQ(e.stats.firstFailureOutcome, sched::Outcome::Deadlock);
    if (workers == 1) {
      serial = e;
      continue;
    }
    EXPECT_EQ(e.stats.runs, serial.stats.runs) << "workers=" << workers;
    EXPECT_EQ(e.stats.completed, serial.stats.completed);
    EXPECT_EQ(e.stats.deadlocks, serial.stats.deadlocks);
    EXPECT_EQ(e.stats.stepLimited, serial.stats.stepLimited);
    EXPECT_EQ(e.stats.exceptions, serial.stats.exceptions);
    EXPECT_EQ(e.stats.firstFailure, serial.stats.firstFailure);
    EXPECT_EQ(e.deadlockSigs, serial.deadlockSigs);
  }
}

// The Figure-2 producer/consumer shape (correct notifyAll buffer),
// branch-bounded so the tree exhausts: counters identical across worker
// counts and no deadlock exists within the bound.
TEST(ParallelExplorer, Figure2DeterministicAcrossWorkerCounts) {
  Exploration serial;
  for (std::size_t workers : {1u, 2u, 8u}) {
    sched::ExhaustiveExplorer::Options eo;
    eo.workers = workers;
    eo.maxBranchDepth = 5;
    Exploration e = explore(scenarios::figure2, eo);
    ASSERT_TRUE(e.stats.exhausted);
    EXPECT_EQ(e.stats.deadlocks, 0u);
    if (workers == 1) {
      serial = e;
      continue;
    }
    EXPECT_EQ(e.stats.runs, serial.stats.runs) << "workers=" << workers;
    EXPECT_EQ(e.stats.completed, serial.stats.completed);
    EXPECT_EQ(e.stats.exhausted, serial.stats.exhausted);
  }
}

// FF-T5 notify-vs-notifyAll with fingerprint pruning: the pruned tree is
// explored at 1, 2 and 8 workers; the set of distinct deadlock states is
// identical every time (run counts may differ slightly — documented).
TEST(ParallelExplorer, FfT5PrunedDeadlockSetStableAcrossWorkerCounts) {
  std::set<std::uint64_t> serialSigs;
  for (std::size_t workers : {1u, 2u, 8u}) {
    sched::ExhaustiveExplorer::Options eo;
    eo.workers = workers;
    eo.maxBranchDepth = 8;
    eo.fingerprintPruning = true;
    Exploration e = explore(scenarios::ffT5Small, eo);
    ASSERT_TRUE(e.stats.exhausted);
    EXPECT_GT(e.stats.deadlocks, 0u);
    EXPECT_GT(e.stats.dedupedStates, 0u);
    EXPECT_GT(e.stats.prunedBranches, 0u);
    if (workers == 1) {
      serialSigs = e.deadlockSigs;
      continue;
    }
    EXPECT_EQ(e.deadlockSigs, serialSigs) << "workers=" << workers;
  }
}

// Fingerprint pruning vs the full tree, serially: far fewer runs, same
// distinct deadlock states.  lockOrder keeps the unpruned tree small.
TEST(ParallelExplorer, PruningCutsRunsButFindsSameDeadlockSet) {
  sched::ExhaustiveExplorer::Options unprunedOpts;
  Exploration unpruned = explore(scenarios::lockOrder, unprunedOpts);
  ASSERT_TRUE(unpruned.stats.exhausted);
  ASSERT_GT(unpruned.stats.deadlocks, 0u);

  sched::ExhaustiveExplorer::Options prunedOpts;
  prunedOpts.fingerprintPruning = true;
  Exploration pruned = explore(scenarios::lockOrder, prunedOpts);
  ASSERT_TRUE(pruned.stats.exhausted);

  EXPECT_LT(pruned.stats.runs, unpruned.stats.runs);
  // The acceptance bar is a >= 30% run reduction; actual is ~84% here.
  EXPECT_LE(pruned.stats.runs * 10, unpruned.stats.runs * 7);
  EXPECT_GT(pruned.stats.dedupedStates, 0u);
  EXPECT_GT(pruned.stats.prunedBranches, 0u);
  EXPECT_EQ(pruned.deadlockSigs, unpruned.deadlockSigs);
  EXPECT_FALSE(pruned.deadlockSigs.empty());
}

// Same reduction bar on the Figure-2 producer/consumer shape (deadlock
// free within the bound: both sides must agree on that, too).
TEST(ParallelExplorer, PruningCutsRunsOnFigure2) {
  sched::ExhaustiveExplorer::Options unprunedOpts;
  unprunedOpts.maxBranchDepth = 4;
  Exploration unpruned = explore(scenarios::figure2, unprunedOpts);
  ASSERT_TRUE(unpruned.stats.exhausted);

  sched::ExhaustiveExplorer::Options prunedOpts;
  prunedOpts.maxBranchDepth = 4;
  prunedOpts.fingerprintPruning = true;
  Exploration pruned = explore(scenarios::figure2, prunedOpts);
  ASSERT_TRUE(pruned.stats.exhausted);

  EXPECT_LE(pruned.stats.runs * 10, unpruned.stats.runs * 7);
  EXPECT_EQ(pruned.deadlockSigs, unpruned.deadlockSigs);  // both empty
  EXPECT_EQ(pruned.stats.deadlocks, 0u);
  EXPECT_EQ(unpruned.stats.deadlocks, 0u);
}

// Sleep sets on two threads over disjoint state: adjacent steps always
// commute, so a large share of the transposed interleavings is skipped,
// with identical outcomes.
TEST(ParallelExplorer, SleepSetsPruneCommutingSiblings) {
  sched::ExhaustiveExplorer::Options plainOpts;
  Exploration plain = explore(scenarios::disjointCounters, plainOpts);
  ASSERT_TRUE(plain.stats.exhausted);
  EXPECT_EQ(plain.stats.deadlocks, 0u);
  EXPECT_EQ(plain.stats.completed, plain.stats.runs);

  sched::ExhaustiveExplorer::Options sleepOpts;
  sleepOpts.reduction = sched::ExhaustiveExplorer::Reduction::Sleep;
  Exploration sleepy = explore(scenarios::disjointCounters, sleepOpts);
  ASSERT_TRUE(sleepy.stats.exhausted);
  EXPECT_EQ(sleepy.stats.deadlocks, 0u);
  EXPECT_EQ(sleepy.stats.completed, sleepy.stats.runs);

  EXPECT_LT(sleepy.stats.runs, plain.stats.runs);
  EXPECT_GT(sleepy.stats.prunedBranches, 0u);
  EXPECT_EQ(sleepy.stats.dedupedStates, 0u);  // pruning off: no dedup
}

// Sleep sets must not lose failure states: lockOrder's steps conflict on
// the two monitors in the deadlocking region, and the one distinct
// deadlock survives the reduction.
TEST(ParallelExplorer, SleepSetsPreserveDeadlockSet) {
  sched::ExhaustiveExplorer::Options plainOpts;
  Exploration plain = explore(scenarios::lockOrder, plainOpts);

  sched::ExhaustiveExplorer::Options sleepOpts;
  sleepOpts.reduction = sched::ExhaustiveExplorer::Reduction::Sleep;
  Exploration sleepy = explore(scenarios::lockOrder, sleepOpts);
  ASSERT_TRUE(sleepy.stats.exhausted);

  EXPECT_LT(sleepy.stats.runs, plain.stats.runs);
  EXPECT_EQ(sleepy.deadlockSigs, plain.deadlockSigs);
  EXPECT_FALSE(sleepy.deadlockSigs.empty());
}

// Budget exhaustion mid-tree: the claim is exact (exactly maxRuns runs),
// exhausted stays false, and firstFailure is still reported if any
// executed run failed.
TEST(ParallelExplorer, BudgetExhaustionReportsFirstFailure) {
  sched::ExhaustiveExplorer::Options eo;
  eo.maxRuns = 10;
  Exploration e = explore(scenarios::lockOrder, eo);
  EXPECT_EQ(e.stats.runs, 10u);
  EXPECT_FALSE(e.stats.exhausted);
  EXPECT_GT(e.stats.deadlocks, 0u);
  ASSERT_FALSE(e.stats.firstFailure.empty());
  EXPECT_EQ(e.stats.firstFailureOutcome, sched::Outcome::Deadlock);
}

// The canonical witness replays to the reported failure.
TEST(ParallelExplorer, FirstFailureReplaysToDeadlock) {
  sched::ExhaustiveExplorer::Options eo;
  Exploration e = explore(scenarios::lockOrder, eo);
  ASSERT_FALSE(e.stats.firstFailure.empty());

  sched::PrefixReplayStrategy replay(e.stats.firstFailure);
  sched::VirtualScheduler s(replay);
  scenarios::lockOrder(s);
  sched::RunResult r = s.run();
  EXPECT_EQ(r.outcome, sched::Outcome::Deadlock);
}

// A zero budget executes nothing and claims no coverage.
TEST(ParallelExplorer, ZeroBudgetRunsNothing) {
  sched::ExhaustiveExplorer::Options eo;
  eo.maxRuns = 0;
  Exploration e = explore(scenarios::lockOrder, eo);
  EXPECT_EQ(e.stats.runs, 0u);
  EXPECT_FALSE(e.stats.exhausted);
  EXPECT_TRUE(e.stats.firstFailure.empty());
}

// workers == 0 resolves to hardware_concurrency and behaves like any other
// worker count: with reductions off on an exhausted tree, same counters.
TEST(ParallelExplorer, HardwareConcurrencyWorkersMatchSerial) {
  sched::ExhaustiveExplorer::Options serialOpts;
  Exploration serial = explore(scenarios::lockOrder, serialOpts);

  sched::ExhaustiveExplorer::Options autoOpts;
  autoOpts.workers = 0;
  Exploration autod = explore(scenarios::lockOrder, autoOpts);
  ASSERT_TRUE(autod.stats.exhausted);
  EXPECT_EQ(autod.stats.runs, serial.stats.runs);
  EXPECT_EQ(autod.stats.deadlocks, serial.stats.deadlocks);
  EXPECT_EQ(autod.stats.firstFailure, serial.stats.firstFailure);
}

// A callback stop is honored in parallel mode without hanging and without
// claiming exhaustion.
TEST(ParallelExplorer, CallbackStopTerminatesParallelExploration) {
  sched::ExhaustiveExplorer::Options eo;
  eo.workers = 4;
  sched::ExhaustiveExplorer explorer(eo);
  std::uint64_t seen = 0;
  // The Scenario cast picks the uninstrumented overload; std::function's
  // templated constructor cannot resolve the overload set on its own.
  auto stats = explorer.explore(
      static_cast<Scenario>(scenarios::lockOrder),
      [&seen](const std::vector<sched::ThreadId>&, const sched::RunResult&) {
        // Serialized by the explorer; plain mutation is safe here.
        return ++seen < 5;
      });
  EXPECT_TRUE(stats.stoppedByCallback);
  EXPECT_FALSE(stats.exhausted);
  EXPECT_GE(stats.runs, 5u);
}
