// FifoLock: strict FIFO service even on a deliberately unfair monitor —
// the constructive fix for the FF-T2 starvation failure — plus
// DetectorSuite behaviour.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "confail/components/fifo_lock.hpp"
#include "confail/detect/suite.hpp"
#include "confail/events/trace.hpp"
#include "confail/monitor/runtime.hpp"
#include "confail/monitor/shared_var.hpp"
#include "confail/sched/virtual_scheduler.hpp"

namespace comps = confail::components;
namespace detect = confail::detect;
namespace ev = confail::events;
namespace sched = confail::sched;
using confail::monitor::Runtime;

TEST(FifoLock, MutualExclusion) {
  ev::Trace trace;
  sched::RandomWalkStrategy strategy(3);
  sched::VirtualScheduler s(strategy);
  Runtime rt(trace, s, 3);
  comps::FifoLock lock(rt, "fifo");
  int inside = 0, maxInside = 0;
  for (int t = 0; t < 4; ++t) {
    rt.spawn("t" + std::to_string(t), [&] {
      for (int i = 0; i < 5; ++i) {
        comps::FifoLock::Guard g(lock);
        ++inside;
        maxInside = std::max(maxInside, inside);
        rt.schedulePoint();
        --inside;
      }
    });
  }
  ASSERT_EQ(s.run().outcome, sched::Outcome::Completed);
  EXPECT_EQ(maxInside, 1);
}

TEST(FifoLock, ServesTicketsInRequestOrder) {
  // Ticket order == service order, even though the underlying monitor uses
  // Random grant AND Random wake policies.
  for (std::uint64_t seed : {1ull, 2ull, 3ull, 4ull, 5ull}) {
    ev::Trace trace;
    sched::RandomWalkStrategy strategy(seed);
    sched::VirtualScheduler s(strategy);
    Runtime rt(trace, s, seed);
    comps::FifoLock lock(rt, "fifo");
    std::vector<int> requestOrder, serviceOrder;
    for (int t = 0; t < 4; ++t) {
      rt.spawn("t" + std::to_string(t), [&, t] {
        lock.lock();
        serviceOrder.push_back(t);
        rt.schedulePoint();
        lock.unlock();
      });
    }
    // Track request order: the FifoLock's ticket counter is the order the
    // threads reached lock(); reconstruct it from the service order being
    // FIFO — i.e., assert service order equals ticket issue order by
    // instrumenting via a second pass below instead.
    ASSERT_EQ(s.run().outcome, sched::Outcome::Completed) << "seed " << seed;
    // With strict FIFO, whoever got ticket k is served k-th.  We cannot
    // observe ticket issue directly here, but FIFO service implies no
    // thread is ever served before a thread that ticketed earlier; absent
    // direct observation, verify the strongest trace-level consequence:
    // every lock() call completes (no starvation) — checked by completion —
    // and each thread entered exactly once.
    EXPECT_EQ(serviceOrder.size(), 4u);
  }
}

TEST(FifoLock, NoStarvationUnderAdversarialChurn) {
  // The scenario that starves a plain monitor under LIFO grants (see the
  // starvation detector test) cannot starve the ticket lock: a victim that
  // requests once is served while aggressors churn.
  ev::Trace trace;
  sched::RoundRobinStrategy strategy;
  sched::VirtualScheduler s(strategy);
  Runtime rt(trace, s, 1);
  comps::FifoLock lock(rt, "fifo");
  bool victimServed = false;
  for (int a = 0; a < 2; ++a) {
    rt.spawn("aggressor" + std::to_string(a), [&] {
      for (int i = 0; i < 40; ++i) {
        comps::FifoLock::Guard g(lock);
        rt.schedulePoint();
      }
    });
  }
  rt.spawn("victim", [&] {
    comps::FifoLock::Guard g(lock);
    victimServed = true;
  });
  ASSERT_EQ(s.run().outcome, sched::Outcome::Completed);
  EXPECT_TRUE(victimServed);
}

TEST(FifoLock, TraceIsCleanUnderSuite) {
  ev::Trace trace;
  sched::RandomWalkStrategy strategy(9);
  sched::VirtualScheduler s(strategy);
  Runtime rt(trace, s, 9);
  comps::FifoLock lock(rt, "fifo");
  confail::monitor::SharedVar<int> data(rt, "data", 0);
  for (int t = 0; t < 3; ++t) {
    rt.spawn("t" + std::to_string(t), [&] {
      for (int i = 0; i < 4; ++i) {
        comps::FifoLock::Guard g(lock);
        data.set(data.get() + 1);
      }
    });
  }
  ASSERT_EQ(s.run().outcome, sched::Outcome::Completed);
  EXPECT_EQ(data.peek(), 12);

  // NOTE: the suite's lockset detector sees accesses guarded by the
  // *FifoLock protocol*, not by holding the monitor across the access —
  // the data access happens between lock()/unlock() calls, outside the
  // internal monitor's critical section.  The happens-before detector
  // understands the ordering; Eraser-style lockset (by design) does not.
  detect::DetectorSuite::Options opts;
  opts.includeUnnecessarySync = true;
  detect::DetectorSuite suite(opts);
  auto findings = suite.analyze(trace);
  for (const auto& f : findings) {
    // Only the documented lockset false positive is tolerated.
    EXPECT_EQ(f.kind, detect::FindingKind::DataRace) << f.describe(trace);
  }
}

TEST(DetectorSuite, RunsEveryDetectorAndFindsSeededFaults) {
  ev::Trace trace;
  sched::RoundRobinStrategy strategy;
  sched::VirtualScheduler s(strategy);
  Runtime rt(trace, s, 1);
  confail::monitor::SharedVar<int> x(rt, "x", 0);
  for (int t = 0; t < 2; ++t) {
    rt.spawn("t" + std::to_string(t), [&] { x.set(x.get() + 1); });
  }
  ASSERT_EQ(s.run().outcome, sched::Outcome::Completed);

  detect::DetectorSuite suite;
  EXPECT_EQ(suite.detectorNames().size(), 8u);
  auto findings = suite.analyze(trace);
  bool race = false;
  for (const auto& f : findings) race = race || f.kind == detect::FindingKind::DataRace;
  EXPECT_TRUE(race);
}

TEST(DetectorSuite, UnnecessarySyncCanBeExcluded) {
  detect::DetectorSuite::Options opts;
  opts.includeUnnecessarySync = false;
  detect::DetectorSuite suite(opts);
  EXPECT_EQ(suite.detectorNames().size(), 7u);
}
