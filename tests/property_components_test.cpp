// Property tests (parameterized sweeps) for the component library: every
// component, under many random schedules and shapes, preserves its core
// invariant, completes, and produces a model-conformant trace on which the
// whole detector battery stays silent.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <numeric>
#include <string>
#include <tuple>

#include "confail/components/barrier.hpp"
#include "confail/components/bounded_buffer.hpp"
#include "confail/components/latch.hpp"
#include "confail/components/producer_consumer.hpp"
#include "confail/components/readers_writers.hpp"
#include "confail/components/semaphore.hpp"
#include "confail/detect/hb_detector.hpp"
#include "confail/detect/lock_graph.hpp"
#include "confail/detect/lockset.hpp"
#include "confail/detect/release_discipline.hpp"
#include "confail/detect/wait_notify.hpp"
#include "confail/events/trace.hpp"
#include "confail/monitor/runtime.hpp"
#include "confail/petri/trace_validator.hpp"
#include "confail/sched/virtual_scheduler.hpp"

namespace comps = confail::components;
namespace detect = confail::detect;
namespace ev = confail::events;
namespace sched = confail::sched;
using confail::monitor::Runtime;

namespace {

std::vector<detect::Finding> detectorBattery(const ev::Trace& trace) {
  detect::LocksetDetector lockset;
  detect::HbDetector hb;
  detect::LockOrderGraph lg;
  detect::WaitNotifyAnalyzer wn;
  detect::ReleaseDisciplineDetector rd;
  std::vector<detect::Finding> all;
  for (detect::Detector* d : std::initializer_list<detect::Detector*>{
           &lockset, &hb, &lg, &wn, &rd}) {
    auto fs = d->analyze(trace);
    all.insert(all.end(), fs.begin(), fs.end());
  }
  return all;
}

std::string describeAll(const std::vector<detect::Finding>& fs,
                        const ev::Trace& trace) {
  std::string out;
  for (const auto& f : fs) out += f.describe(trace) + "\n";
  return out;
}

}  // namespace

// ---------------------------------------------------------------------------
// BoundedBuffer: (capacity, producers, consumers, seed) sweep.
// ---------------------------------------------------------------------------

using BufShape = std::tuple<int, int, int, std::uint64_t>;  // cap, P, C, seed

class BoundedBufferSweep : public testing::TestWithParam<BufShape> {};

namespace {

std::string seedName(const testing::TestParamInfo<std::uint64_t>& info) {
  return "seed" + std::to_string(info.param);
}

std::string bufShapeName(const testing::TestParamInfo<BufShape>& info) {
  return "cap" + std::to_string(std::get<0>(info.param)) + "_p" +
         std::to_string(std::get<1>(info.param)) + "_c" +
         std::to_string(std::get<2>(info.param)) + "_seed" +
         std::to_string(std::get<3>(info.param));
}

}  // namespace


TEST_P(BoundedBufferSweep, ConservesItemsRespectsCapacityAndIsClean) {
  const auto [capacity, producers, consumers, seed] = GetParam();
  const int perProducer = 12;
  const int total = producers * perProducer;
  ASSERT_EQ(total % consumers, 0);

  ev::Trace trace;
  sched::RandomWalkStrategy strategy(seed);
  sched::VirtualScheduler s(strategy);
  Runtime rt(trace, s, seed);
  comps::BoundedBuffer<int> buf(rt, "buf", static_cast<std::size_t>(capacity));

  long sumIn = 0, sumOut = 0;
  int maxSize = 0;
  for (int p = 0; p < producers; ++p) {
    rt.spawn("p" + std::to_string(p), [&, p] {
      for (int i = 0; i < perProducer; ++i) {
        int v = p * 1000 + i;
        sumIn += v;
        buf.put(v);
        maxSize = std::max(maxSize, buf.sizeNow());
      }
    });
  }
  for (int c = 0; c < consumers; ++c) {
    rt.spawn("c" + std::to_string(c), [&] {
      for (int i = 0; i < total / consumers; ++i) sumOut += buf.take();
    });
  }
  auto r = s.run();
  ASSERT_EQ(r.outcome, sched::Outcome::Completed);
  EXPECT_EQ(sumOut, sumIn);
  EXPECT_EQ(buf.sizeNow(), 0);
  EXPECT_LE(maxSize, capacity);

  auto v = confail::petri::validateTraceAgainstModel(trace, buf.mon().id());
  EXPECT_TRUE(v.ok) << v.message;
  auto findings = detectorBattery(trace);
  EXPECT_TRUE(findings.empty()) << describeAll(findings, trace);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, BoundedBufferSweep,
    testing::Values(BufShape{1, 1, 1, 5}, BufShape{1, 2, 2, 6},
                    BufShape{2, 3, 2, 7}, BufShape{4, 2, 4, 8},
                    BufShape{8, 4, 3, 9}, BufShape{3, 1, 4, 10},
                    BufShape{1, 3, 1, 11}, BufShape{16, 2, 2, 12}),
    bufShapeName);

// ---------------------------------------------------------------------------
// ProducerConsumer: message-integrity sweep over seeds and message shapes.
// ---------------------------------------------------------------------------

class PcSweep : public testing::TestWithParam<std::uint64_t> {};

TEST_P(PcSweep, MessagesArriveIntactUnderRandomSchedules) {
  const std::uint64_t seed = GetParam();
  ev::Trace trace;
  sched::RandomWalkStrategy strategy(seed);
  sched::VirtualScheduler s(strategy);
  Runtime rt(trace, s, seed);
  comps::ProducerConsumer pc(rt);

  std::string sent, received;
  rt.spawn("producer", [&] {
    for (int m = 0; m < 6; ++m) {
      std::string msg(1 + (m % 4), static_cast<char>('a' + m));
      sent += msg;
      pc.send(msg);
    }
  });
  std::size_t expectTotal = 1 + 2 + 3 + 4 + 1 + 2;
  rt.spawn("consumer", [&] {
    for (std::size_t i = 0; i < expectTotal; ++i) received.push_back(pc.receive());
  });
  auto r = s.run();
  ASSERT_EQ(r.outcome, sched::Outcome::Completed);
  EXPECT_EQ(received, sent);

  auto findings = detectorBattery(trace);
  EXPECT_TRUE(findings.empty()) << describeAll(findings, trace);
  auto v = confail::petri::validateTraceAgainstModel(trace, pc.mon().id());
  EXPECT_TRUE(v.ok) << v.message;
}

INSTANTIATE_TEST_SUITE_P(Seeds, PcSweep,
                         testing::Range<std::uint64_t>(1, 13),
                         seedName);

// ---------------------------------------------------------------------------
// CountingSemaphore: concurrency bound holds for every permit count.
// ---------------------------------------------------------------------------

using SemShape = std::tuple<int, int, std::uint64_t>;  // permits, threads, seed

class SemaphoreSweep : public testing::TestWithParam<SemShape> {};

namespace {
std::string semShapeName(const testing::TestParamInfo<SemShape>& info) {
  return "permits" + std::to_string(std::get<0>(info.param)) + "_threads" +
         std::to_string(std::get<1>(info.param)) + "_seed" +
         std::to_string(std::get<2>(info.param));
}
}  // namespace


TEST_P(SemaphoreSweep, NeverExceedsPermits) {
  const auto [permits, threads, seed] = GetParam();
  ev::Trace trace;
  sched::RandomWalkStrategy strategy(seed);
  sched::VirtualScheduler s(strategy);
  Runtime rt(trace, s, seed);
  comps::CountingSemaphore sem(rt, "sem", permits);
  int inside = 0, maxInside = 0;
  for (int t = 0; t < threads; ++t) {
    rt.spawn("t" + std::to_string(t), [&] {
      for (int i = 0; i < 5; ++i) {
        sem.acquire();
        ++inside;
        maxInside = std::max(maxInside, inside);
        rt.schedulePoint();
        --inside;
        sem.release();
      }
    });
  }
  auto r = s.run();
  ASSERT_EQ(r.outcome, sched::Outcome::Completed);
  EXPECT_LE(maxInside, permits);
  EXPECT_EQ(sem.permits(), permits);
  auto findings = detectorBattery(trace);
  EXPECT_TRUE(findings.empty()) << describeAll(findings, trace);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SemaphoreSweep,
    testing::Combine(testing::Values(1, 2, 3), testing::Values(2, 5),
                     testing::Values(21ull, 22ull)),
    semShapeName);

// ---------------------------------------------------------------------------
// CyclicBarrier: all parties see every generation exactly once, any shape.
// ---------------------------------------------------------------------------

using BarShape = std::tuple<int, int, std::uint64_t>;  // parties, rounds, seed

class BarrierSweep : public testing::TestWithParam<BarShape> {};

namespace {
std::string barShapeName(const testing::TestParamInfo<BarShape>& info) {
  return "parties" + std::to_string(std::get<0>(info.param)) + "_rounds" +
         std::to_string(std::get<1>(info.param)) + "_seed" +
         std::to_string(std::get<2>(info.param));
}
}  // namespace


TEST_P(BarrierSweep, EveryGenerationCompletesExactlyOncePerParty) {
  const auto [parties, rounds, seed] = GetParam();
  ev::Trace trace;
  sched::RandomWalkStrategy strategy(seed);
  sched::VirtualScheduler s(strategy);
  Runtime rt(trace, s, seed);
  comps::CyclicBarrier bar(rt, "bar", parties);
  std::map<int, int> generationCount;
  for (int t = 0; t < parties; ++t) {
    rt.spawn("t" + std::to_string(t), [&] {
      for (int round = 0; round < rounds; ++round) {
        ++generationCount[bar.await()];
      }
    });
  }
  auto r = s.run();
  ASSERT_EQ(r.outcome, sched::Outcome::Completed);
  ASSERT_EQ(generationCount.size(), static_cast<std::size_t>(rounds));
  for (int g = 0; g < rounds; ++g) {
    EXPECT_EQ(generationCount[g], parties) << "generation " << g;
  }
  auto findings = detectorBattery(trace);
  EXPECT_TRUE(findings.empty()) << describeAll(findings, trace);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, BarrierSweep,
    testing::Combine(testing::Values(2, 3, 5), testing::Values(1, 4),
                     testing::Values(31ull, 32ull)),
    barShapeName);

// ---------------------------------------------------------------------------
// ReadersWriters: exclusion matrix holds under both preferences.
// ---------------------------------------------------------------------------

using RwShape = std::tuple<comps::ReadersWriters::Preference, std::uint64_t>;

class ReadersWritersSweep : public testing::TestWithParam<RwShape> {};

namespace {
std::string rwShapeName(const testing::TestParamInfo<RwShape>& info) {
  return std::string(std::get<0>(info.param) ==
                             comps::ReadersWriters::Preference::Readers
                         ? "readersPref"
                         : "fair") +
         "_seed" + std::to_string(std::get<1>(info.param));
}
}  // namespace


TEST_P(ReadersWritersSweep, ExclusionMatrixHolds) {
  const auto [pref, seed] = GetParam();
  ev::Trace trace;
  sched::RandomWalkStrategy strategy(seed);
  sched::VirtualScheduler s(strategy);
  Runtime rt(trace, s, seed);
  comps::ReadersWriters rw(rt, pref);
  int readersIn = 0;
  bool writerIn = false;
  bool violation = false;
  for (int i = 0; i < 3; ++i) {
    rt.spawn("reader" + std::to_string(i), [&] {
      for (int k = 0; k < 4; ++k) {
        rw.startRead();
        ++readersIn;
        if (writerIn) violation = true;
        rt.schedulePoint();
        --readersIn;
        rw.endRead();
      }
    });
  }
  for (int i = 0; i < 2; ++i) {
    rt.spawn("writer" + std::to_string(i), [&] {
      for (int k = 0; k < 3; ++k) {
        rw.startWrite();
        if (writerIn || readersIn > 0) violation = true;
        writerIn = true;
        rt.schedulePoint();
        writerIn = false;
        rw.endWrite();
      }
    });
  }
  auto r = s.run();
  ASSERT_EQ(r.outcome, sched::Outcome::Completed);
  EXPECT_FALSE(violation);
  auto findings = detectorBattery(trace);
  EXPECT_TRUE(findings.empty()) << describeAll(findings, trace);
}

INSTANTIATE_TEST_SUITE_P(
    Prefs, ReadersWritersSweep,
    testing::Combine(testing::Values(comps::ReadersWriters::Preference::Readers,
                                     comps::ReadersWriters::Preference::Fair),
                     testing::Values(41ull, 42ull, 43ull)),
    rwShapeName);

// ---------------------------------------------------------------------------
// CountDownLatch: (count, awaiters, seed) sweep.
// ---------------------------------------------------------------------------

using LatchShape = std::tuple<int, int, std::uint64_t>;

class LatchSweep : public testing::TestWithParam<LatchShape> {};

namespace {
std::string latchShapeName(const testing::TestParamInfo<LatchShape>& info) {
  return "count" + std::to_string(std::get<0>(info.param)) + "_await" +
         std::to_string(std::get<1>(info.param)) + "_seed" +
         std::to_string(std::get<2>(info.param));
}
}  // namespace


TEST_P(LatchSweep, AwaitersReleasedExactlyAtZero) {
  const auto [count, awaiters, seed] = GetParam();
  ev::Trace trace;
  sched::RandomWalkStrategy strategy(seed);
  sched::VirtualScheduler s(strategy);
  Runtime rt(trace, s, seed);
  comps::CountDownLatch latch(rt, "latch", count);
  int released = 0;
  bool earlyRelease = false;
  for (int t = 0; t < awaiters; ++t) {
    rt.spawn("awaiter" + std::to_string(t), [&] {
      latch.await();
      if (latch.count() != 0) earlyRelease = true;
      ++released;
    });
  }
  rt.spawn("counter", [&] {
    for (int i = 0; i < count; ++i) {
      rt.schedulePoint();
      latch.countDown();
    }
  });
  auto r = s.run();
  ASSERT_EQ(r.outcome, sched::Outcome::Completed);
  EXPECT_EQ(released, awaiters);
  EXPECT_FALSE(earlyRelease);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, LatchSweep,
    testing::Combine(testing::Values(1, 3, 6), testing::Values(1, 4),
                     testing::Values(51ull, 52ull)),
    latchShapeName);
