// The greedy IR shrinker: known minimal reproducers, determinism across
// runs, and validity of every candidate it evaluates.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "confail/gen/generator.hpp"
#include "confail/gen/interpret.hpp"
#include "confail/gen/ir.hpp"
#include "confail/gen/shrink.hpp"
#include "confail/sched/explorer.hpp"

namespace gen = confail::gen;
namespace sched = confail::sched;

namespace {

using gen::Op;
using gen::OpKind;

sched::ExhaustiveExplorer::Stats explore(const gen::Program& p) {
  sched::ExhaustiveExplorer::Options eo;
  eo.maxRuns = 20000;
  eo.maxSteps = 2000;
  eo.maxBranchDepth = 6;
  sched::ExhaustiveExplorer ex(eo);
  return ex.explore([&p](sched::VirtualScheduler& s) { gen::interpret(p, s); },
                    [](const std::vector<sched::ThreadId>&,
                       const sched::RunResult&) { return true; });
}

/// "Still fails" for the classic case: some schedule deadlocks.
bool deadlocks(const gen::Program& p) {
  const auto st = explore(p);
  return st.exhausted && st.deadlocks > 0;
}

/// Schedule-dependent deadlock: deadlocks on some schedules AND completes
/// on others — the lost-notification signature (an always-deadlocking
/// program, e.g. a bare self-wait, does not qualify).
bool sometimesDeadlocks(const gen::Program& p) {
  const auto st = explore(p);
  return st.exhausted && st.deadlocks > 0 && st.completed > 0;
}

/// A junk-laden program whose only failure is a buried self-wait.
gen::Program junkySelfWait() {
  gen::Program p;
  p.monitors = 2;
  p.vars = 2;
  p.threads.push_back(gen::ThreadIR{{{OpKind::Read, 1},
                                     {OpKind::Lock, 0},
                                     {OpKind::Write, 1},
                                     {OpKind::Wait, 0},
                                     {OpKind::Unlock, 0},
                                     {OpKind::Yield, 0}}});
  p.threads.push_back(gen::ThreadIR{{{OpKind::Lock, 1},
                                     {OpKind::Read, 0},
                                     {OpKind::Unlock, 1},
                                     {OpKind::LoopBegin, 0, 2},
                                     {OpKind::Write, 0},
                                     {OpKind::LoopEnd, 0}}});
  return p;
}

const std::vector<Op> kMinimalSelfWait = {
    {OpKind::Lock, 0}, {OpKind::Wait, 0}, {OpKind::Unlock, 0}};

}  // namespace

TEST(GenShrink, ReducesJunkToTheMinimalSelfWait) {
  const gen::Program p = junkySelfWait();
  ASSERT_TRUE(p.validate());
  ASSERT_TRUE(deadlocks(p));

  const gen::ShrinkResult r = gen::shrink(p, deadlocks);
  EXPECT_TRUE(r.fixpoint);
  ASSERT_EQ(r.program.threads.size(), 1u);
  EXPECT_EQ(r.program.threads[0].ops, kMinimalSelfWait);
  EXPECT_EQ(r.program.monitors, 1);
  EXPECT_EQ(r.program.vars, 1);
  EXPECT_EQ(r.program.opCount(), 3u);
}

TEST(GenShrink, IsDeterministicAcrossRuns) {
  const gen::Program p = junkySelfWait();
  const gen::ShrinkResult a = gen::shrink(p, deadlocks);
  const gen::ShrinkResult b = gen::shrink(p, deadlocks);
  EXPECT_EQ(a.program, b.program);
  EXPECT_EQ(a.program.render(), b.program.render());
  EXPECT_EQ(a.attempts, b.attempts);
  EXPECT_EQ(a.accepted, b.accepted);
}

TEST(GenShrink, OnlyEvaluatesValidCandidates) {
  const gen::Program p = junkySelfWait();
  std::size_t calls = 0;
  const auto checkedPredicate = [&calls](const gen::Program& cand) {
    ++calls;
    EXPECT_TRUE(cand.validate()) << cand.render();
    return deadlocks(cand);
  };
  gen::shrink(p, checkedPredicate);
  EXPECT_GT(calls, 0u);
}

TEST(GenShrink, RespectsTheAttemptBudget) {
  const gen::Program p = junkySelfWait();
  gen::ShrinkOptions opts;
  opts.maxAttempts = 3;
  const gen::ShrinkResult r = gen::shrink(p, deadlocks, opts);
  EXPECT_LE(r.attempts, 3u);
  EXPECT_TRUE(r.program.validate());
  EXPECT_TRUE(deadlocks(r.program));  // never returns a non-failing program
}

TEST(GenShrink, FuzzSeed0ShrinksToTheMinimalDeadlocker) {
  // Seed 0 of the default tier is the first deadlocking seed the sabotage
  // campaign trips on (see `confail fuzz --sabotage drop-deadlocks`); its
  // 27-op program must shrink to the canonical 3-op self-wait.
  const gen::Program p = gen::generate(0, gen::GenConfig{});
  ASSERT_TRUE(deadlocks(p));
  const gen::ShrinkResult r = gen::shrink(p, deadlocks);
  ASSERT_EQ(r.program.threads.size(), 1u);
  EXPECT_EQ(r.program.threads[0].ops, kMinimalSelfWait);
  EXPECT_LE(r.program.opCount(), 8u);  // the ISSUE's reproducer-size bar
}

TEST(GenShrink, FuzzSeed54ShrinksToTheLostSignalShape) {
  // Seed 54 deadlocks on 15 of its 16 bounded schedules and completes on
  // the one where the waiter waits before the lone notifyAll fires.  Under
  // the schedule-dependent-deadlock predicate the minimal program is the
  // 6-op lost-notification shape pinned in the registry as
  // `gen_lost_signal` (a waiter thread and a notifier thread; a bare
  // self-wait fails the predicate because it never completes).
  const gen::Program p = gen::generate(54, gen::GenConfig{});
  ASSERT_TRUE(sometimesDeadlocks(p));
  const gen::ShrinkResult r = gen::shrink(p, sometimesDeadlocks);
  EXPECT_EQ(r.program.opCount(), 6u) << r.program.render();
  ASSERT_EQ(r.program.threads.size(), 2u);
  EXPECT_EQ(r.program.monitors, 1);
  // One thread waits, the other notifies; both under the same monitor.
  const bool t0Waits = r.program.threads[0].ops[1].kind == OpKind::Wait;
  const gen::ThreadIR& waiter = r.program.threads[t0Waits ? 0 : 1];
  const gen::ThreadIR& notifier = r.program.threads[t0Waits ? 1 : 0];
  EXPECT_EQ(waiter.ops, kMinimalSelfWait);
  ASSERT_EQ(notifier.ops.size(), 3u);
  EXPECT_EQ(notifier.ops[0].kind, OpKind::Lock);
  EXPECT_TRUE(notifier.ops[1].kind == OpKind::Notify ||
              notifier.ops[1].kind == OpKind::NotifyAll);
  EXPECT_EQ(notifier.ops[2].kind, OpKind::Unlock);
}
