// Unit tests for support utilities: RNG determinism and distribution,
// text helpers, assertion macros.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "confail/support/assert.hpp"
#include "confail/support/rng.hpp"
#include "confail/support/text.hpp"

using confail::SplitMix64;
using confail::Xoshiro256;

TEST(Rng, SplitMixIsDeterministic) {
  SplitMix64 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, XoshiroIsDeterministicPerSeed) {
  Xoshiro256 a(7), b(7), c(8);
  bool anyDiff = false;
  for (int i = 0; i < 100; ++i) {
    std::uint64_t va = a.next();
    EXPECT_EQ(va, b.next());
    anyDiff = anyDiff || (va != c.next());
  }
  EXPECT_TRUE(anyDiff);
}

TEST(Rng, BelowStaysInRange) {
  Xoshiro256 rng(123);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 7ull, 100ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.below(bound), bound);
  }
}

TEST(Rng, BelowCoversAllValues) {
  Xoshiro256 rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.below(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, UniformInUnitInterval) {
  Xoshiro256 rng(5);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ChanceEdgeCases) {
  Xoshiro256 rng(5);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.chance(0.25) ? 1 : 0;
  EXPECT_NEAR(hits / 10000.0, 0.25, 0.03);
}

TEST(Rng, ShuffleIsAPermutation) {
  Xoshiro256 rng(17);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto orig = v;
  confail::shuffle(v, rng);
  std::multiset<int> a(v.begin(), v.end()), b(orig.begin(), orig.end());
  EXPECT_EQ(a, b);
}

TEST(Text, JoinAndSplitRoundTrip) {
  std::vector<std::string> parts{"a", "bb", "ccc"};
  EXPECT_EQ(confail::join(parts, ","), "a,bb,ccc");
  EXPECT_EQ(confail::split("a,bb,ccc", ','), parts);
  EXPECT_EQ(confail::join({}, ","), "");
  EXPECT_EQ(confail::split("", ',').size(), 1u);
}

TEST(Text, PadTo) {
  EXPECT_EQ(confail::padTo("ab", 4), "ab  ");
  EXPECT_EQ(confail::padTo("abcdef", 4), "abcd");
}

TEST(Text, WrapBreaksOnSpaces) {
  auto lines = confail::wrap("one two three four", 9);
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[0], "one two");
  EXPECT_EQ(lines[1], "three");
  EXPECT_EQ(lines[2], "four");
}

TEST(Text, WrapHardBreaksLongWords) {
  auto lines = confail::wrap("abcdefghij", 4);
  ASSERT_GE(lines.size(), 3u);
  EXPECT_EQ(lines[0], "abcd");
}

TEST(Text, RenderTableProducesGrid) {
  std::string t = confail::renderTable({{"h1", "h2"}, {"a", "bb"}}, 10);
  EXPECT_NE(t.find("| h1"), std::string::npos);
  EXPECT_NE(t.find("| a"), std::string::npos);
  EXPECT_NE(t.find("+--"), std::string::npos);
}

TEST(Assert, CheckThrowsTypedException) {
  EXPECT_THROW(CONFAIL_CHECK(false, confail::UsageError, "bad"),
               confail::UsageError);
  EXPECT_NO_THROW(CONFAIL_CHECK(true, confail::UsageError, "ok"));
}
