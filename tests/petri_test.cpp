// Unit and property tests for the Petri-net engine and the Figure-1
// thread/lock model: enabledness/firing, reachability, invariants
// (mutual exclusion, token conservation), dead markings in the gated-notify
// variant, and trace-against-model validation.
#include <gtest/gtest.h>

#include "confail/events/trace.hpp"
#include "confail/monitor/monitor.hpp"
#include "confail/monitor/runtime.hpp"
#include "confail/petri/net.hpp"
#include "confail/petri/reachability.hpp"
#include "confail/petri/thread_lock_net.hpp"
#include "confail/petri/trace_validator.hpp"
#include "confail/sched/explorer.hpp"
#include "confail/sched/virtual_scheduler.hpp"

#include <algorithm>
#include <map>
#include <set>

namespace ev = confail::events;
namespace petri = confail::petri;
namespace sched = confail::sched;
using confail::monitor::Runtime;
using petri::buildThreadLockNet;
using petri::Marking;
using petri::Net;
using petri::NotifyModel;

TEST(Net, EnabledAndFire) {
  Net n;
  auto p0 = n.addPlace("p0");
  auto p1 = n.addPlace("p1");
  auto t = n.addTransition("t", {{p0, 1}}, {{p1, 2}});
  Marking m{1, 0};
  ASSERT_TRUE(n.enabled(t, m));
  Marking next = n.fire(t, m);
  EXPECT_EQ(next, (Marking{0, 2}));
  EXPECT_FALSE(n.enabled(t, next));
  EXPECT_THROW(n.fire(t, next), confail::UsageError);
}

TEST(Net, WeightedArcs) {
  Net n;
  auto p0 = n.addPlace("p0");
  auto t = n.addTransition("t", {{p0, 3}}, {});
  EXPECT_FALSE(n.enabled(t, Marking{2}));
  EXPECT_TRUE(n.enabled(t, Marking{3}));
  EXPECT_EQ(n.fire(t, Marking{5}), Marking{2});
}

TEST(Net, BadConstructionRejected) {
  Net n;
  auto p0 = n.addPlace("p0");
  EXPECT_THROW(n.addTransition("bad", {{p0 + 7, 1}}, {}), confail::UsageError);
  EXPECT_THROW(n.addTransition("bad", {{p0, 0}}, {}), confail::UsageError);
}

TEST(Net, MarkingSizeChecked) {
  Net n;
  n.addPlace("p0");
  auto t = n.addTransition("t", {}, {});
  EXPECT_THROW(n.enabled(t, Marking{}), confail::UsageError);
}

TEST(Net, DescribeAndRender) {
  auto tl = buildThreadLockNet(1, NotifyModel::Free);
  std::string d = tl.net.describe();
  EXPECT_NE(d.find("T1_0"), std::string::npos);
  EXPECT_NE(d.find("A0"), std::string::npos);
  std::string m = tl.net.renderMarking(tl.initial);
  EXPECT_NE(m.find("A0"), std::string::npos);
  EXPECT_NE(m.find("E"), std::string::npos);
}

TEST(ThreadLockNet, SingleThreadReachabilityIsFigure1) {
  // One thread: states are exactly {A+E, B+E, C, D+E} — the four thread
  // states of Figure 1 (lock availability determined by the thread state).
  auto tl = buildThreadLockNet(1, NotifyModel::Free);
  auto r = petri::reachable(tl.net, tl.initial);
  EXPECT_TRUE(r.complete);
  EXPECT_EQ(r.stateCount(), 4u);
  EXPECT_TRUE(r.deadStates.empty());
}

TEST(ThreadLockNet, FreeModelDeadlockFree) {
  for (unsigned n = 1; n <= 4; ++n) {
    auto tl = buildThreadLockNet(n, NotifyModel::Free);
    auto r = petri::reachable(tl.net, tl.initial);
    ASSERT_TRUE(r.complete);
    EXPECT_TRUE(r.deadStates.empty()) << n << " threads";
  }
}

TEST(ThreadLockNet, MutualExclusionInvariantHolds) {
  // E + sum_i C_i == 1 across every reachable marking: at most one thread
  // in the critical section, and the lock token is never lost or forged.
  for (unsigned n = 1; n <= 4; ++n) {
    auto tl = buildThreadLockNet(n, NotifyModel::Free);
    auto r = petri::reachable(tl.net, tl.initial);
    ASSERT_TRUE(r.complete);
    EXPECT_TRUE(petri::holdsPInvariant(r, tl.lockInvariantWeights()))
        << n << " threads";
  }
}

TEST(ThreadLockNet, PerThreadConservationHolds) {
  auto tl = buildThreadLockNet(3, NotifyModel::Free);
  auto r = petri::reachable(tl.net, tl.initial);
  ASSERT_TRUE(r.complete);
  for (unsigned i = 0; i < 3; ++i) {
    EXPECT_TRUE(petri::holdsPInvariant(r, tl.threadConservationWeights(i)))
        << "thread " << i;
  }
}

TEST(ThreadLockNet, NetIsOneBounded) {
  auto tl = buildThreadLockNet(4, NotifyModel::Free);
  auto r = petri::reachable(tl.net, tl.initial);
  ASSERT_TRUE(r.complete);
  EXPECT_EQ(petri::maxTokensPerPlace(r), 1u);
}

TEST(ThreadLockNet, ReachableStateCountGrowsGeometrically) {
  // Each thread contributes 4 local states; the lock token couples them:
  // |states| = sum_{k=0..1} C(n,k)*3^? — just check monotone growth and
  // the exact closed form for small n against enumeration.
  std::vector<std::size_t> counts;
  for (unsigned n = 1; n <= 5; ++n) {
    auto tl = buildThreadLockNet(n, NotifyModel::Free);
    auto r = petri::reachable(tl.net, tl.initial);
    ASSERT_TRUE(r.complete);
    counts.push_back(r.stateCount());
  }
  for (std::size_t i = 1; i < counts.size(); ++i) {
    EXPECT_GT(counts[i], counts[i - 1]);
  }
  // n=1: 4 states (verified above); the sequence is a regression pin.
  EXPECT_EQ(counts[0], 4u);
}

TEST(ThreadLockNet, GatedModelHasTheLostNotifyDeadlock) {
  // With notify gated on another thread being inside the monitor, the
  // marking "every thread in D" is reachable and dead: the FF-T5
  // everybody-waits failure, found by exhaustive model analysis.
  auto tl = buildThreadLockNet(2, NotifyModel::Gated);
  auto r = petri::reachable(tl.net, tl.initial);
  ASSERT_TRUE(r.complete);
  ASSERT_FALSE(r.deadStates.empty());
  bool allWaitingDead = false;
  for (std::size_t s : r.deadStates) {
    allWaitingDead = allWaitingDead || tl.allWaiting(r.states[s]);
  }
  EXPECT_TRUE(allWaitingDead);
}

TEST(ThreadLockNet, GatedDeadlockHasAWitnessPath) {
  auto tl = buildThreadLockNet(2, NotifyModel::Gated);
  auto r = petri::reachable(tl.net, tl.initial);
  std::size_t target = 0;
  for (std::size_t s : r.deadStates) {
    if (tl.allWaiting(r.states[s])) {
      target = s;
      break;
    }
  }
  ASSERT_NE(target, 0u);
  auto path = petri::shortestPathTo(tl.net, r, target);
  // Replay the witness: it must be a legal firing sequence ending dead.
  Marking m = tl.initial;
  for (auto t : path) m = tl.net.fire(t, m);
  EXPECT_EQ(m, r.states[target]);
  EXPECT_TRUE(tl.net.enabledSet(m).empty());
  // Minimal witness: both threads enter and wait: T1,T2,T3 each = 6 firings.
  EXPECT_EQ(path.size(), 6u);
}

TEST(Reachability, StateCapReportsIncomplete) {
  auto tl = buildThreadLockNet(4, NotifyModel::Free);
  auto r = petri::reachable(tl.net, tl.initial, /*maxStates=*/10);
  EXPECT_FALSE(r.complete);
  EXPECT_LE(r.stateCount(), 10u);
}

TEST(TraceValidator, MonitorTraceIsALegalFiringSequence) {
  // Run a real contended wait/notify scenario on the monitor substrate and
  // machine-check the recorded trace against the Figure-1 net.
  ev::Trace trace;
  sched::RoundRobinStrategy strategy;
  sched::VirtualScheduler s(strategy);
  Runtime rt(trace, s, 1);
  confail::monitor::Monitor m(rt, "m");
  bool go = false;
  rt.spawn("w1", [&] {
    confail::monitor::Synchronized sync(m);
    while (!go) m.wait();
  });
  rt.spawn("w2", [&] {
    confail::monitor::Synchronized sync(m);
    while (!go) m.wait();
  });
  rt.spawn("n", [&] {
    for (int i = 0; i < 8; ++i) rt.schedulePoint();
    confail::monitor::Synchronized sync(m);
    go = true;
    m.notifyAll();
  });
  ASSERT_EQ(s.run().outcome, sched::Outcome::Completed);
  auto v = petri::validateTraceAgainstModel(trace, m.id());
  EXPECT_TRUE(v.ok) << v.message;
  EXPECT_GT(v.eventsChecked, 10u);
}

TEST(TraceValidator, CorruptedTraceIsRejected) {
  // Hand-build an illegal sequence: a lock acquired twice without release.
  ev::Trace trace;
  auto push = [&trace](ev::ThreadId t, ev::EventKind k) {
    ev::Event e;
    e.thread = t;
    e.monitor = 0;
    e.kind = k;
    trace.record(e);
  };
  push(0, ev::EventKind::LockRequest);
  push(0, ev::EventKind::LockAcquire);
  push(1, ev::EventKind::LockRequest);
  push(1, ev::EventKind::LockAcquire);  // illegal: lock token consumed
  auto v = petri::validateTraceAgainstModel(trace, 0);
  EXPECT_FALSE(v.ok);
  EXPECT_NE(v.message.find("T2"), std::string::npos);
}

TEST(TraceValidator, EmptyProjectionIsTriviallyValid) {
  ev::Trace trace;
  auto v = petri::validateTraceAgainstModel(trace, 3);
  EXPECT_TRUE(v.ok);
  EXPECT_EQ(v.eventsChecked, 0u);
}

// ---------------------------------------------------------------------------
// Automatic P-invariant computation (invariants.hpp).
// ---------------------------------------------------------------------------

#include "confail/petri/invariants.hpp"

TEST(Invariants, HandWrittenInvariantRecognized) {
  auto tl = buildThreadLockNet(3, NotifyModel::Free);
  std::vector<long long> lockInv(tl.net.placeCount(), 0);
  for (int w : tl.lockInvariantWeights()) {
    static std::size_t i = 0;
    (void)w;
    ++i;
  }
  // Convert the int weights to long long.
  auto wi = tl.lockInvariantWeights();
  std::vector<long long> w(wi.begin(), wi.end());
  EXPECT_TRUE(petri::isPInvariant(tl.net, w));
  // A wrong weighting is rejected.
  w[tl.A[0]] += 1;
  EXPECT_FALSE(petri::isPInvariant(tl.net, w));
}

TEST(Invariants, ComputedBasisHasExpectedDimension) {
  // The N-thread lock net has exactly N+1 independent P-invariants:
  // one conservation per thread plus the mutual-exclusion invariant.
  for (unsigned n = 1; n <= 4; ++n) {
    auto tl = buildThreadLockNet(n, NotifyModel::Free);
    auto basis = petri::computePInvariants(tl.net);
    EXPECT_EQ(basis.size(), n + 1) << n << " threads";
    for (const auto& y : basis) {
      EXPECT_TRUE(petri::isPInvariant(tl.net, y));
    }
  }
}

TEST(Invariants, ComputedInvariantsHoldOverReachability) {
  auto tl = buildThreadLockNet(3, NotifyModel::Free);
  auto r = petri::reachable(tl.net, tl.initial);
  for (const auto& y : petri::computePInvariants(tl.net)) {
    std::vector<int> w(y.begin(), y.end());
    EXPECT_TRUE(petri::holdsPInvariant(r, w));
  }
}

TEST(Invariants, KnownInvariantsLieInComputedSpan) {
  // Verify the hand-written invariants are linear combinations of the
  // computed basis by checking token sums over reachable markings agree
  // (sufficient here because the computed basis spans the full null space
  // and the hand-written vectors ARE invariants).
  auto tl = buildThreadLockNet(2, NotifyModel::Free);
  auto wi = tl.lockInvariantWeights();
  std::vector<long long> w(wi.begin(), wi.end());
  EXPECT_TRUE(petri::isPInvariant(tl.net, w));
  for (unsigned i = 0; i < 2; ++i) {
    auto ci = tl.threadConservationWeights(i);
    std::vector<long long> c(ci.begin(), ci.end());
    EXPECT_TRUE(petri::isPInvariant(tl.net, c));
  }
}

TEST(Invariants, GatedNetAlsoConservesLockToken) {
  auto tl = buildThreadLockNet(3, NotifyModel::Gated);
  auto basis = petri::computePInvariants(tl.net);
  EXPECT_GE(basis.size(), 4u);
  auto wi = tl.lockInvariantWeights();
  std::vector<long long> w(wi.begin(), wi.end());
  EXPECT_TRUE(petri::isPInvariant(tl.net, w));
}

TEST(Invariants, NetWithNoInvariantsYieldsEmptyBasis) {
  // A pure source transition destroys every conservation law.
  Net n;
  auto p0 = n.addPlace("p0");
  n.addTransition("source", {}, {{p0, 1}});
  auto basis = petri::computePInvariants(n);
  EXPECT_TRUE(basis.empty());
}

TEST(Invariants, WeightedNetInvariant) {
  // t: 2a -> b ; invariant y = (1, 2): 1*a + 2*b? fire consumes 2a (-2)
  // produces 1b (+2) -> conserved.
  Net n;
  auto pa = n.addPlace("a");
  auto pb = n.addPlace("b");
  n.addTransition("t", {{pa, 2}}, {{pb, 1}});
  auto basis = petri::computePInvariants(n);
  ASSERT_EQ(basis.size(), 1u);
  EXPECT_TRUE(petri::isPInvariant(n, basis[0]));
  // The basis vector must be proportional to (1, 2).
  EXPECT_EQ(basis[0][pa] * 2, basis[0][pb]);
}

TEST(Invariants, TInvariantRecognizesTheCriticalSectionCycle) {
  // One thread: firing T1, T2, T4 once each returns to the initial
  // marking; so does the waiting pass T1, T2, T3, T5, T2, T4 (T2 twice).
  auto tl = buildThreadLockNet(1, NotifyModel::Free);
  std::vector<long long> plainCycle(tl.net.transitionCount(), 0);
  plainCycle[tl.T1[0][0]] = 1;
  plainCycle[tl.T2[0][0]] = 1;
  plainCycle[tl.T4[0][0]] = 1;
  EXPECT_TRUE(petri::isTInvariant(tl.net, plainCycle));

  std::vector<long long> waitingPass(tl.net.transitionCount(), 0);
  waitingPass[tl.T1[0][0]] = 1;
  waitingPass[tl.T2[0][0]] = 2;  // acquire + re-acquire after the wait
  waitingPass[tl.T3[0][0]] = 1;
  waitingPass[tl.T5free[0][0]] = 1;
  waitingPass[tl.T4[0][0]] = 1;
  EXPECT_TRUE(petri::isTInvariant(tl.net, waitingPass));

  // A non-cycle (wait without wake) is rejected.
  std::vector<long long> broken(tl.net.transitionCount(), 0);
  broken[tl.T1[0][0]] = 1;
  broken[tl.T2[0][0]] = 1;
  broken[tl.T3[0][0]] = 1;
  EXPECT_FALSE(petri::isTInvariant(tl.net, broken));
}

TEST(Invariants, ComputedTInvariantBasisSpansBothCycles) {
  auto tl = buildThreadLockNet(2, NotifyModel::Free);
  auto basis = petri::computeTInvariants(tl.net);
  // Per thread: plain cycle + waiting pass = 2 independent T-invariants.
  EXPECT_EQ(basis.size(), 4u);
  for (const auto& x : basis) {
    EXPECT_TRUE(petri::isTInvariant(tl.net, x));
  }
}

TEST(Invariants, TInvariantFiringSequenceActuallyCycles) {
  // Execute the waiting-pass T-invariant as a concrete firing sequence and
  // observe the initial marking restored.
  auto tl = buildThreadLockNet(1, NotifyModel::Free);
  Marking m = tl.initial;
  for (auto t : {tl.T1[0][0], tl.T2[0][0], tl.T3[0][0], tl.T5free[0][0],
                 tl.T2[0][0], tl.T4[0][0]}) {
    ASSERT_TRUE(tl.net.enabled(t, m)) << tl.net.transitionName(t);
    m = tl.net.fire(t, m);
  }
  EXPECT_EQ(m, tl.initial);
}

TEST(ModelCrossCheck, ExhaustiveExplorationVisitsEveryReachableNetState) {
  // Cross-validation of substrate vs model: exhaustively explore a
  // two-thread lock/unlock program on the monitor substrate, map every
  // trace through the Figure-1 net, and verify that the set of net
  // markings visited equals the reachable set of the corresponding
  // sub-net (threads that never wait: places A, B, C + E).
  using MarkingSet = std::set<petri::Marking>;
  MarkingSet visited;

  sched::ExhaustiveExplorer::Options opts;
  opts.maxRuns = 20000;
  sched::ExhaustiveExplorer explorer(opts);
  auto stats = explorer.explore(
      [&visited](sched::VirtualScheduler& s) {
        struct State {
          ev::Trace trace;
          Runtime rt;
          confail::monitor::Monitor m;
          explicit State(sched::VirtualScheduler& sc)
              : rt(trace, sc, 1), m(rt, "m") {}
        };
        auto st = std::make_shared<State>(s);
        auto record = [st, &visited] {
          // At thread end, replay this run's trace through the net and
          // collect every intermediate marking.
          auto tl = buildThreadLockNet(2, NotifyModel::Free);
          petri::Marking m = tl.initial;
          visited.insert(m);
          std::map<ev::ThreadId, unsigned> index;
          for (const ev::Event& e : st->trace.events()) {
            if (!ev::isModelTransition(e.kind)) continue;
            if (!index.count(e.thread)) {
              unsigned idx = static_cast<unsigned>(index.size());
              index[e.thread] = idx;
            }
            unsigned i = index[e.thread];
            petri::TransitionId t = 0;
            switch (e.kind) {
              case ev::EventKind::LockRequest: t = tl.T1[i][0]; break;
              case ev::EventKind::LockAcquire: t = tl.T2[i][0]; break;
              case ev::EventKind::WaitBegin: t = tl.T3[i][0]; break;
              case ev::EventKind::LockRelease: t = tl.T4[i][0]; break;
              default: t = tl.T5free[i][0]; break;
            }
            m = tl.net.fire(t, m);
            visited.insert(m);
          }
        };
        for (int t = 0; t < 2; ++t) {
          st->rt.spawn("t" + std::to_string(t), [st] {
            confail::monitor::Synchronized sync(st->m);
            // A schedule point inside the critical section makes the
            // "one in C, the other requesting" markings reachable.
            st->rt.schedulePoint();
          });
        }
        // Record after both threads by spawning a final observer is racy;
        // instead record from the second thread's end via a third thread
        // joined on both.
        st->rt.spawn("observer", [st, record] {
          st->rt.join(0);
          st->rt.join(1);
          record();
        });
      },
      nullptr);
  ASSERT_TRUE(stats.exhausted);
  ASSERT_EQ(stats.completed, stats.runs);

  // Reachable markings of the no-wait submodel: restrict the full net's
  // reachable set to markings with D empty and no T3/T5 fired — i.e.
  // enumerate the net but prune D: equivalently filter full reachability.
  auto tl = buildThreadLockNet(2, NotifyModel::Free);
  auto r = petri::reachable(tl.net, tl.initial);
  MarkingSet expected;
  for (const auto& m : r.states) {
    if (m[tl.D[0][0]] != 0 || m[tl.D[1][0]] != 0) continue;  // nobody waits here
    if (m[tl.B[0][0]] != 0 && m[tl.B[1][0]] != 0) continue;
    if (m[tl.B[0][0]] != 0 && m[tl.C[1][0]] != 0) continue;
    // ^ Two model-only markings: the substrate acquires atomically when the
    //   lock is free (T1 immediately followed by T2 in the trace), so
    //   (a) two threads are never simultaneously observable in B, and
    //   (b) under the replay's first-appearance thread numbering, net
    //   thread 0 is the first requester — who always acquired instantly —
    //   so "0 in B while 1 already in C" cannot be observed either.
    expected.insert(m);
  }
  // Every marking the substrate visits is model-reachable, and it visits
  // every marking the model allows except the documented both-in-B case.
  EXPECT_EQ(visited, expected);
  for (const auto& m : visited) {
    EXPECT_TRUE(std::find(r.states.begin(), r.states.end(), m) !=
                r.states.end());
  }
}

// ---------------------------------------------------------------------------
// N x M nets, packed markings, hashing, parent links (this PR's additions).
// ---------------------------------------------------------------------------

#include "confail/petri/packed_marking.hpp"
#include "confail/support/flat_table.hpp"

TEST(ThreadLockNetNM, MultiMonitorConstruction) {
  auto tl = buildThreadLockNet(3, 2, NotifyModel::Gated);
  EXPECT_EQ(tl.threads, 3u);
  EXPECT_EQ(tl.monitors, 2u);
  // 3 * (A + 2*(B,C,D)) + 2 E places.
  EXPECT_EQ(tl.net.placeCount(), 3u * 7u + 2u);
  // Multi-monitor names carry the _m suffix; single-monitor names do not.
  EXPECT_NE(tl.net.describe().find("T1_0_m1"), std::string::npos);
  auto single = buildThreadLockNet(2, NotifyModel::Free);
  EXPECT_EQ(single.net.describe().find("_m0"), std::string::npos);
}

TEST(ThreadLockNetNM, InvariantBasisIsThreadsPlusMonitors) {
  // One conservation law per thread plus one lock invariant per monitor.
  for (unsigned n = 1; n <= 3; ++n) {
    for (unsigned mth = 1; mth <= 3; ++mth) {
      auto tl = buildThreadLockNet(n, mth, NotifyModel::Free);
      auto basis = petri::computePInvariants(tl.net);
      EXPECT_EQ(basis.size(), n + mth) << n << "x" << mth;
      for (unsigned m = 0; m < mth; ++m) {
        auto wi = tl.lockInvariantWeights(m);
        std::vector<long long> w(wi.begin(), wi.end());
        EXPECT_TRUE(petri::isPInvariant(tl.net, w));
      }
    }
  }
}

TEST(ThreadLockNetNM, MonitorsAreIndependentUntilAThreadCouplesThem) {
  // 2 threads x 2 monitors, free: each thread engages one monitor at a
  // time, so the reachable count is NOT the square of the 1-monitor count
  // (a thread in monitor 0 cannot also be in monitor 1).
  auto one = petri::reachable(buildThreadLockNet(2, 1, NotifyModel::Free).net,
                              buildThreadLockNet(2, 1, NotifyModel::Free)
                                  .initial);
  auto two = petri::reachable(buildThreadLockNet(2, 2, NotifyModel::Free).net,
                              buildThreadLockNet(2, 2, NotifyModel::Free)
                                  .initial);
  ASSERT_TRUE(one.complete);
  ASSERT_TRUE(two.complete);
  EXPECT_GT(two.stateCount(), one.stateCount());
  EXPECT_LT(two.stateCount(), one.stateCount() * one.stateCount());
}

TEST(PackedMarking, RoundTripsEveryReachableMarking) {
  auto tl = buildThreadLockNet(3, 2, NotifyModel::Gated);
  auto r = petri::reachable(tl.net, tl.initial);
  ASSERT_TRUE(r.complete);
  for (const Marking& m : r.states) {
    auto packed = petri::PackedMarking<1>::encode(m);
    ASSERT_TRUE(packed.has_value());
    EXPECT_EQ(packed->decode(m.size()), m);
  }
}

TEST(PackedMarking, RejectsMultiTokenPlaces) {
  Marking m{2, 0, 1};
  EXPECT_FALSE(petri::PackedMarking<1>::encode(m).has_value());
}

TEST(PackedMarking, WordCountMatchesPlaceCount) {
  EXPECT_EQ(petri::packedWords(1), 1u);
  EXPECT_EQ(petri::packedWords(64), 1u);
  EXPECT_EQ(petri::packedWords(65), 2u);
  EXPECT_EQ(petri::packedWords(256), 4u);
}

TEST(FlatTable, MultiWordKeysInsertAndFind) {
  confail::FlatMapN<4> map(4);
  std::array<std::uint64_t, 4> a{1, 2, 3, 4};
  std::array<std::uint64_t, 4> b{1, 2, 3, 5};
  EXPECT_EQ(map.find(a), confail::FlatMapN<4>::kNoValue);
  EXPECT_TRUE(map.findOrInsert(a, 7).second);
  EXPECT_FALSE(map.findOrInsert(a, 9).second);  // already present, keeps 7
  EXPECT_EQ(map.find(a), 7u);
  EXPECT_EQ(map.find(b), confail::FlatMapN<4>::kNoValue);
  // Grow path: push well past the initial capacity.
  for (std::uint64_t i = 0; i < 5000; ++i) {
    map.findOrInsert({i, i * 3, i ^ 0xff, ~i}, static_cast<std::uint32_t>(i));
  }
  EXPECT_EQ(map.find(a), 7u);
  EXPECT_EQ(map.find({123, 369, 123 ^ 0xff, ~std::uint64_t{123}}), 123u);
}

TEST(MarkingHash, NoCollisionsAcrossReachableSet) {
  // splitmix64 avalanche: every reachable marking of a mid-size net gets a
  // distinct hash.  Not guaranteed in general, but a collision here (2748
  // states into 64 bits) would flag a broken mixer with near certainty.
  auto tl = buildThreadLockNet(5, NotifyModel::Free);
  auto r = petri::reachable(tl.net, tl.initial);
  ASSERT_TRUE(r.complete);
  petri::MarkingHash h;
  std::set<std::size_t> hashes;
  for (const Marking& m : r.states) hashes.insert(h(m));
  EXPECT_EQ(hashes.size(), r.stateCount());
}

TEST(Reachability, ParentLinksReconstructEveryState) {
  auto tl = buildThreadLockNet(3, NotifyModel::Gated);
  auto r = petri::reachable(tl.net, tl.initial);
  ASSERT_TRUE(r.complete);
  ASSERT_EQ(r.parents.size(), r.stateCount());
  for (std::size_t s = 1; s < r.stateCount(); ++s) {
    auto path = petri::shortestPathTo(tl.net, r, s);
    Marking m = tl.initial;
    for (auto t : path) {
      ASSERT_TRUE(tl.net.enabled(t, m));
      m = tl.net.fire(t, m);
    }
    EXPECT_EQ(m, r.states[s]);
  }
  EXPECT_TRUE(petri::shortestPathTo(tl.net, r, 0).empty());
}

TEST(Reachability, FreeStateCountClosedForm) {
  // Free N x 1: each thread is in {A, B, D} freely plus at most one thread
  // in C: 3^N + N * 3^(N-1) states.
  for (unsigned n = 1; n <= 6; ++n) {
    auto tl = buildThreadLockNet(n, NotifyModel::Free);
    auto r = petri::reachable(tl.net, tl.initial);
    ASSERT_TRUE(r.complete);
    std::size_t pow3 = 1;
    for (unsigned k = 1; k < n; ++k) pow3 *= 3;
    EXPECT_EQ(r.stateCount(), pow3 * 3 + n * pow3) << n << " threads";
  }
}

TEST(Reachability, PackedAndGenericEnginesAgree) {
  // Force the generic fallback with a net that is not 1-bounded and check
  // the packed path on one that is.
  Net n;
  auto p0 = n.addPlace("p0");
  auto p1 = n.addPlace("p1");
  n.addTransition("t", {{p0, 1}}, {{p1, 2}});
  auto r = petri::reachable(n, Marking{1, 0});
  EXPECT_EQ(r.stateCount(), 2u);  // {1,0} and {0,2} — generic engine
  EXPECT_EQ(r.parents.size(), 2u);

  auto tl = buildThreadLockNet(4, NotifyModel::Gated);
  petri::ReachOptions opts;
  auto packed = petri::reachable(tl.net, tl.initial, opts);
  auto legacy = petri::reachable(tl.net, tl.initial);
  EXPECT_EQ(packed.stateCount(), legacy.stateCount());
  EXPECT_EQ(packed.edgeCount(), legacy.edgeCount());
  EXPECT_EQ(packed.deadStates, legacy.deadStates);
}
