// Second wave of detector tests: multi-lock cycles, nested-lock lockset
// behaviour, happens-before transitivity across monitors, wait/notify
// corner cases, starvation-threshold boundaries, and classifier evidence
// strings.
#include <gtest/gtest.h>

#include <string>

#include "confail/detect/hb_detector.hpp"
#include "confail/detect/lock_graph.hpp"
#include "confail/detect/lockset.hpp"
#include "confail/detect/starvation.hpp"
#include "confail/detect/suite.hpp"
#include "confail/detect/wait_notify.hpp"
#include "confail/events/trace.hpp"
#include "confail/monitor/monitor.hpp"
#include "confail/monitor/runtime.hpp"
#include "confail/monitor/shared_var.hpp"
#include "confail/sched/virtual_scheduler.hpp"

namespace detect = confail::detect;
namespace ev = confail::events;
namespace sched = confail::sched;
using confail::monitor::Monitor;
using confail::monitor::Runtime;
using confail::monitor::SharedVar;
using confail::monitor::Synchronized;
using detect::FindingKind;

namespace {
struct Harness {
  ev::Trace trace;
  sched::RoundRobinStrategy strategy;
  sched::VirtualScheduler sched{strategy};
  Runtime rt{trace, sched, 1};

  bool has(const std::vector<detect::Finding>& fs, FindingKind k) const {
    for (const auto& f : fs) {
      if (f.kind == k) return true;
    }
    return false;
  }
};
}  // namespace

TEST(LockGraphExtra, ThreeLockCycleDetected) {
  Harness h;
  Monitor a(h.rt, "A"), b(h.rt, "B"), c(h.rt, "C");
  // Serialize the three threads so the hazard stays latent.
  int stage = 0;
  auto waitFor = [&](int want) {
    while (stage != want) h.rt.schedulePoint();
  };
  h.rt.spawn("ab", [&] {
    Synchronized l1(a);
    Synchronized l2(b);
    stage = 1;
  });
  h.rt.spawn("bc", [&] {
    waitFor(1);
    Synchronized l1(b);
    Synchronized l2(c);
    stage = 2;
  });
  h.rt.spawn("ca", [&] {
    waitFor(2);
    Synchronized l1(c);
    Synchronized l2(a);
  });
  ASSERT_TRUE(h.sched.run().ok());
  detect::LockOrderGraph d;
  auto fs = d.analyze(h.trace);
  ASSERT_TRUE(h.has(fs, FindingKind::DeadlockCycle));
  // The cycle message names all three monitors.
  const std::string msg = fs[0].message;
  EXPECT_NE(msg.find("A"), std::string::npos);
  EXPECT_NE(msg.find("B"), std::string::npos);
  EXPECT_NE(msg.find("C"), std::string::npos);
}

TEST(LockGraphExtra, ReentrantAcquisitionIsNotAnEdge) {
  Harness h;
  Monitor a(h.rt, "A");
  h.rt.spawn("t", [&] {
    Synchronized outer(a);
    Synchronized inner(a);  // reentrant: no self-edge, no cycle
  });
  ASSERT_TRUE(h.sched.run().ok());
  detect::LockOrderGraph d;
  EXPECT_TRUE(d.analyze(h.trace).empty());
}

TEST(LockGraphExtra, WaitBreaksTheHeldChain) {
  // Thread holds A, then waits on A while acquiring nothing: no A->A or
  // stale edges from the released period.
  Harness h;
  Monitor a(h.rt, "A"), b(h.rt, "B");
  bool go = false;
  h.rt.spawn("waiter", [&] {
    Synchronized l1(a);
    while (!go) a.wait();
    Synchronized l2(b);  // edge A->B recorded once, after the wake
  });
  h.rt.spawn("notifier", [&] {
    for (int k = 0; k < 4; ++k) h.rt.schedulePoint();
    Synchronized l1(a);
    go = true;
    a.notifyAll();
  });
  ASSERT_TRUE(h.sched.run().ok());
  detect::LockOrderGraph d;
  EXPECT_TRUE(d.analyze(h.trace).empty());  // single order, no cycle
}

TEST(LocksetExtra, TwoLocksProtectingDifferentVarsAreIndependent) {
  Harness h;
  Monitor a(h.rt, "A"), b(h.rt, "B");
  SharedVar<int> x(h.rt, "x", 0), y(h.rt, "y", 0);
  for (int t = 0; t < 2; ++t) {
    h.rt.spawn("t" + std::to_string(t), [&] {
      {
        Synchronized l(a);
        x.set(x.get() + 1);
      }
      {
        Synchronized l(b);
        y.set(y.get() + 1);
      }
    });
  }
  ASSERT_TRUE(h.sched.run().ok());
  detect::LocksetDetector d;
  EXPECT_TRUE(d.analyze(h.trace).empty());
}

TEST(LocksetExtra, MixedLockingIsARace) {
  // Thread 0 uses lock A, thread 1 uses lock B for the same variable:
  // candidate set empties -> race, even though every access is locked.
  Harness h;
  Monitor a(h.rt, "A"), b(h.rt, "B");
  SharedVar<int> x(h.rt, "x", 0);
  h.rt.spawn("viaA", [&] {
    Synchronized l(a);
    x.set(x.get() + 1);
  });
  h.rt.spawn("viaB", [&] {
    Synchronized l(b);
    x.set(x.get() + 1);
  });
  ASSERT_TRUE(h.sched.run().ok());
  detect::LocksetDetector d;
  EXPECT_TRUE(h.has(d.analyze(h.trace), FindingKind::DataRace));
}

TEST(LocksetExtra, NestedLocksKeepInnerCandidate) {
  // Accesses always under B (sometimes with A as well): B survives in the
  // candidate set -> no race.
  Harness h;
  Monitor a(h.rt, "A"), b(h.rt, "B");
  SharedVar<int> x(h.rt, "x", 0);
  h.rt.spawn("nested", [&] {
    Synchronized l1(a);
    Synchronized l2(b);
    x.set(1);
  });
  h.rt.spawn("plain", [&] {
    Synchronized l2(b);
    x.set(2);
  });
  ASSERT_TRUE(h.sched.run().ok());
  detect::LocksetDetector d;
  EXPECT_TRUE(d.analyze(h.trace).empty());
}

TEST(HappensBeforeExtra, TransitiveOrderingAcrossTwoMonitors) {
  // t0 writes x under A; t1 bridges A -> B; t2 reads x under B.
  // The HB chain is indirect but complete: no race.
  Harness h;
  Monitor a(h.rt, "A"), b(h.rt, "B");
  SharedVar<int> x(h.rt, "x", 0);
  int stage = 0;
  h.rt.spawn("writer", [&] {
    Synchronized l(a);
    x.set(42);
    stage = 1;
  });
  h.rt.spawn("bridge", [&] {
    while (stage != 1) h.rt.schedulePoint();
    Synchronized l1(a);
    Synchronized l2(b);
    stage = 2;
  });
  h.rt.spawn("reader", [&] {
    while (stage != 2) h.rt.schedulePoint();
    Synchronized l(b);
    EXPECT_EQ(x.get(), 42);
  });
  ASSERT_TRUE(h.sched.run().ok());
  detect::HbDetector d;
  EXPECT_TRUE(d.analyze(h.trace).empty());
}

TEST(HappensBeforeExtra, LocksetFalsePositiveHbTrueNegative) {
  // The classic divergence: ownership handoff through a monitor-ordered
  // flag.  Lockset flags it (no single lock guards x); happens-before
  // correctly stays quiet.
  Harness h;
  Monitor m(h.rt, "m");
  SharedVar<int> x(h.rt, "x", 0);
  bool transferred = false;
  h.rt.spawn("first-owner", [&] {
    x.set(10);  // unlocked, but before the handoff
    Synchronized l(m);
    transferred = true;
    m.notifyAll();
  });
  h.rt.spawn("second-owner", [&] {
    {
      Synchronized l(m);
      while (!transferred) {
        h.rt.emit(ev::EventKind::GuardEval, ev::kNoMonitor, 0, true);
        m.wait();
      }
      h.rt.emit(ev::EventKind::GuardEval, ev::kNoMonitor, 0, false);
    }
    x.set(20);  // unlocked, but after the handoff completed
  });
  ASSERT_TRUE(h.sched.run().ok());
  detect::LocksetDetector lockset;
  detect::HbDetector hb;
  EXPECT_TRUE(h.has(lockset.analyze(h.trace), FindingKind::DataRace))
      << "Eraser-style lockset is expected to false-positive here";
  EXPECT_TRUE(hb.analyze(h.trace).empty())
      << "happens-before must recognize the handoff";
}

TEST(WaitNotifyExtra, NotifyAllWithNoWaitersThenHangingWaitIsLostNotify) {
  Harness h;
  Monitor m(h.rt, "m");
  h.rt.spawn("broadcast-first", [&] {
    Synchronized l(m);
    m.notifyAll();  // empty wait set
  });
  h.rt.spawn("late-waiter", [&] {
    for (int k = 0; k < 4; ++k) h.rt.schedulePoint();
    Synchronized l(m);
    m.wait();
  });
  EXPECT_EQ(h.sched.run().outcome, sched::Outcome::Deadlock);
  detect::WaitNotifyAnalyzer d;
  auto fs = d.analyze(h.trace);
  EXPECT_TRUE(h.has(fs, FindingKind::LostNotify));
}

TEST(WaitNotifyExtra, SatisfiedWaitersProduceNoFindings) {
  Harness h;
  Monitor m(h.rt, "m");
  int woken = 0;
  bool go = false;
  for (int i = 0; i < 3; ++i) {
    h.rt.spawn("w" + std::to_string(i), [&] {
      Synchronized l(m);
      // Disciplined guard loop: re-evaluation is announced via GuardEval
      // (components do this automatically; raw monitor users must too, or
      // the guard-discipline heuristic rightly flags them).
      for (;;) {
        h.rt.emit(ev::EventKind::GuardEval, ev::kNoMonitor, 0, !go);
        if (go) break;
        m.wait();
      }
      ++woken;
    });
  }
  h.rt.spawn("n", [&] {
    for (int k = 0; k < 8; ++k) h.rt.schedulePoint();
    Synchronized l(m);
    go = true;
    m.notifyAll();
  });
  ASSERT_TRUE(h.sched.run().ok());
  EXPECT_EQ(woken, 3);
  detect::WaitNotifyAnalyzer d;
  EXPECT_TRUE(d.analyze(h.trace).empty());
}

TEST(StarvationExtra, ThresholdBoundary) {
  // Exactly threshold-1 grants while pending: silent; threshold: reported.
  auto runWith = [](std::uint64_t grants, std::uint64_t threshold) {
    ev::Trace trace;
    // Build the trace by hand: requester pends while another thread takes
    // the lock `grants` times, then the requester is served.
    auto push = [&trace](ev::ThreadId t, ev::EventKind k, ev::MonitorId m) {
      ev::Event e;
      e.thread = t;
      e.kind = k;
      e.monitor = m;
      trace.record(e);
    };
    push(0, ev::EventKind::LockRequest, 0);
    for (std::uint64_t i = 0; i < grants; ++i) {
      push(1, ev::EventKind::LockRequest, 0);
      push(1, ev::EventKind::LockAcquire, 0);
      push(1, ev::EventKind::LockRelease, 0);
    }
    push(0, ev::EventKind::LockAcquire, 0);
    push(0, ev::EventKind::LockRelease, 0);
    detect::StarvationDetector d(threshold);
    return d.analyze(trace);
  };
  EXPECT_TRUE(runWith(4, 5).empty());
  EXPECT_FALSE(runWith(5, 5).empty());
}

TEST(SuiteExtra, FindingsComeInBatteryOrder) {
  // A trace with both a race and a hung waiter: lockset's finding must
  // precede wait-notify's in the suite output (stable battery order).
  Harness h;
  Monitor m(h.rt, "m");
  SharedVar<int> x(h.rt, "x", 0);
  for (int t = 0; t < 2; ++t) {
    h.rt.spawn("racer" + std::to_string(t), [&] { x.set(x.get() + 1); });
  }
  h.rt.spawn("hanger", [&] {
    Synchronized l(m);
    m.wait();
  });
  EXPECT_EQ(h.sched.run().outcome, sched::Outcome::Deadlock);
  detect::DetectorSuite suite;
  auto fs = suite.analyze(h.trace);
  std::size_t racePos = fs.size(), waitPos = fs.size();
  for (std::size_t i = 0; i < fs.size(); ++i) {
    if (fs[i].kind == FindingKind::DataRace && racePos == fs.size()) racePos = i;
    if (fs[i].kind == FindingKind::WaitingForever && waitPos == fs.size()) waitPos = i;
  }
  ASSERT_LT(racePos, fs.size());
  ASSERT_LT(waitPos, fs.size());
  EXPECT_LT(racePos, waitPos);
}
