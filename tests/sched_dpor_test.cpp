// Source-set DPOR (Reduction::Dpor): failure-set preservation against full
// enumeration, canonical lexicographic-min witnesses, determinism across
// worker counts, and the reduction actually reducing.
//
// The contract under test (see docs/exploration.md):
//   * Within a branch-depth bound chosen deep enough for the scenario (see
//     the per-scenario table below — bounded partial-order reduction is
//     incomplete at very tight bounds, where reversing an in-bound race
//     needs a branch the bound forbids), DPOR finds the same set of
//     distinct deadlock states as Reduction::None, in strictly fewer runs.
//   * Stats::firstFailure under DPOR is the lexicographically smallest
//     *canonicalized* failing schedule: every failing run is rewritten to
//     the lex-min linearization of its Mazurkiewicz trace, which equals
//     the minimum over the canonicalizations of every failing run the full
//     enumeration executes — even though DPOR executes only one
//     representative per trace.  The witness replays to the same outcome.
//   * All of the above is identical at 1, 2 and 8 workers: the prefix
//     tree's atomic claim masks make the explored frontier a function of
//     the scenario, not of scheduling luck.
#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "confail/components/scenario_registry.hpp"
#include "confail/sched/explorer.hpp"
#include "confail/sched/fingerprint.hpp"

namespace sched = confail::sched;
namespace scenarios = confail::components::scenarios;

namespace {

using Reduction = sched::ExhaustiveExplorer::Reduction;

/// Hash of the blocked set of a deadlocked run — two runs deadlocking in
/// the same state (via different schedules) have equal signatures.
std::uint64_t deadlockSignature(const sched::RunResult& r) {
  std::uint64_t h = sched::kFpSeed;
  for (const sched::BlockedThreadInfo& b : r.blocked) {
    h = sched::fpMix(h, (static_cast<std::uint64_t>(b.id) << 32) ^
                            static_cast<std::uint64_t>(b.kind));
    h = sched::fpMix(h, b.resource);
  }
  return h;
}

/// Re-execute a recorded schedule with state capture and return the run.
sched::RunResult replay(const scenarios::NamedScenario& sc,
                        const std::vector<sched::ThreadId>& schedule) {
  sched::PrefixReplayStrategy strategy(schedule);
  sched::VirtualScheduler::Options so;
  so.maxSteps = 20000;
  so.captureState = true;
  sched::VirtualScheduler s(strategy, so);
  sc.fn(s);
  return s.run();
}

struct Exploration {
  sched::ExhaustiveExplorer::Stats stats;
  std::set<std::uint64_t> deadlockSigs;
  /// Minimum over all failing runs of the canonical (lex-min linearization
  /// of the trace) schedule; only collected for Reduction::None.
  std::vector<sched::ThreadId> minCanonicalFailure;
};

Exploration explore(const scenarios::NamedScenario& sc, Reduction reduction,
                    std::size_t maxDepth, std::size_t workers,
                    bool canonicalizeFailures) {
  sched::ExhaustiveExplorer::Options eo;
  eo.maxRuns = 200000;
  eo.maxSteps = 20000;
  eo.maxBranchDepth = maxDepth;
  eo.reduction = reduction;
  eo.workers = workers;
  sched::ExhaustiveExplorer explorer(eo);
  Exploration out;
  out.stats = explorer.explore(
      sc.fn, [&](const std::vector<sched::ThreadId>& schedule,
                 const sched::RunResult& r) {
        if (r.outcome == sched::Outcome::Deadlock) {
          out.deadlockSigs.insert(deadlockSignature(r));
        }
        if (canonicalizeFailures && r.outcome != sched::Outcome::Completed) {
          // The callback's RunResult has no footprints under
          // Reduction::None; re-execute to canonicalize.
          std::vector<sched::ThreadId> canon =
              sched::canonicalTraceWitness(replay(sc, schedule));
          if (out.minCanonicalFailure.empty() ||
              canon < out.minCanonicalFailure) {
            out.minCanonicalFailure = std::move(canon);
          }
        }
        return true;
      });
  return out;
}

/// Branch-depth bound per registry scenario, chosen (empirically) deep
/// enough that bounded DPOR's trace coverage includes every deadlock state
/// of the bounded full enumeration.  Tighter bounds genuinely diverge —
/// the classic bounded-POR incompleteness documented in
/// docs/exploration.md — so a new scenario must be calibrated, not
/// defaulted: the registry loop below fails on a scenario missing here.
std::size_t depthFor(const std::string& name) {
  if (name == "fig2") return 6;
  if (name == "ff_t5") return 6;
  if (name == "ff_t5_small") return 7;
  if (name == "lock_order") return 8;
  if (name == "disjoint") return 8;
  // The fuzzer-found reproducers: trees of a handful of steps, effectively
  // unbounded at depth 8.
  if (name == "gen_selfwait") return 8;
  if (name == "gen_lost_signal") return 8;
  if (name == "gen_unguarded_write") return 8;
  return 0;
}

/// The gen_* reproducers are deliberately minimal — every pair of steps
/// touches the same monitor or variable (or there is only one thread), so
/// DPOR has nothing independent to elide and may legitimately explore the
/// whole (tiny) tree.  Strict reduction is asserted everywhere else.
bool expectStrictReduction(const std::string& name) {
  return name.rfind("gen_", 0) != 0;
}

constexpr std::size_t kWorkerCounts[] = {1, 2, 8};

}  // namespace

// For every registry scenario: DPOR preserves the deadlock-state set and
// the canonical lex-min failing witness of the bounded full enumeration,
// explores strictly fewer runs, and does all of it identically at 1, 2
// and 8 workers.
TEST(SchedDporTest, MatchesFullEnumerationPerScenario) {
  for (const scenarios::NamedScenario& sc : scenarios::registry()) {
    const std::size_t depth = depthFor(sc.name);
    ASSERT_NE(depth, 0u) << "scenario '" << sc.name
                         << "' has no calibrated DPOR test depth";
    const Exploration none =
        explore(sc, Reduction::None, depth, 1, /*canonicalizeFailures=*/true);
    ASSERT_TRUE(none.stats.exhausted) << sc.name;

    for (std::size_t workers : kWorkerCounts) {
      SCOPED_TRACE(std::string(sc.name) + " workers=" +
                   std::to_string(workers));
      const Exploration dpor = explore(sc, Reduction::Dpor, depth, workers,
                                       /*canonicalizeFailures=*/false);
      ASSERT_TRUE(dpor.stats.exhausted);
      EXPECT_EQ(dpor.deadlockSigs, none.deadlockSigs);
      EXPECT_EQ(dpor.stats.firstFailure, none.minCanonicalFailure);
      if (expectStrictReduction(sc.name)) {
        EXPECT_LT(dpor.stats.runs, none.stats.runs);
      } else {
        EXPECT_LE(dpor.stats.runs, none.stats.runs);
      }
      if (!none.minCanonicalFailure.empty()) {
        EXPECT_EQ(dpor.stats.firstFailureOutcome,
                  none.stats.firstFailureOutcome);
      }
    }
  }
}

// DPOR's canonical witness is a *feasible* schedule: replaying it
// reproduces the reported failure even though DPOR itself may never have
// executed that exact interleaving.
TEST(SchedDporTest, CanonicalWitnessReplaysToReportedFailure) {
  for (const scenarios::NamedScenario& sc : scenarios::registry()) {
    const Exploration dpor = explore(sc, Reduction::Dpor, depthFor(sc.name),
                                     1, /*canonicalizeFailures=*/false);
    if (dpor.stats.firstFailure.empty()) continue;
    SCOPED_TRACE(sc.name);
    const sched::RunResult rerun = replay(sc, dpor.stats.firstFailure);
    EXPECT_EQ(rerun.outcome, dpor.stats.firstFailureOutcome);
    // A canonical schedule is a fixpoint of canonicalization.
    EXPECT_EQ(sched::canonicalTraceWitness(rerun), dpor.stats.firstFailure);
  }
}

// Determinism: the DPOR frontier is claimed exactly-once through atomic
// masks on the shared prefix tree, so every Stats counter — not just the
// failure set — is independent of the worker count.
TEST(SchedDporTest, StatsDeterministicAcrossWorkerCounts) {
  const scenarios::NamedScenario* sc = scenarios::find("ff_t5_small");
  ASSERT_NE(sc, nullptr);
  const Exploration base =
      explore(*sc, Reduction::Dpor, 7, 1, /*canonicalizeFailures=*/false);
  for (std::size_t workers : {std::size_t{2}, std::size_t{8}}) {
    SCOPED_TRACE(workers);
    const Exploration again = explore(*sc, Reduction::Dpor, 7, workers,
                                      /*canonicalizeFailures=*/false);
    EXPECT_EQ(again.stats.runs, base.stats.runs);
    EXPECT_EQ(again.stats.deadlocks, base.stats.deadlocks);
    EXPECT_EQ(again.stats.dporBacktracks, base.stats.dporBacktracks);
    EXPECT_EQ(again.stats.prunedBranches, base.stats.prunedBranches);
    EXPECT_EQ(again.stats.firstFailure, base.stats.firstFailure);
    EXPECT_EQ(again.deadlockSigs, base.deadlockSigs);
  }
}

// Two threads touching disjoint variables form a single Mazurkiewicz
// trace: sleep sets collapse the whole tree to exactly one run with no
// backtracks, while full enumeration pays for every interleaving.
TEST(SchedDporTest, DisjointThreadsCollapseToOneRun) {
  const scenarios::NamedScenario* sc = scenarios::find("disjoint");
  ASSERT_NE(sc, nullptr);
  const Exploration dpor =
      explore(*sc, Reduction::Dpor, 8, 1, /*canonicalizeFailures=*/false);
  EXPECT_EQ(dpor.stats.runs, 1u);
  EXPECT_EQ(dpor.stats.dporBacktracks, 0u);
  EXPECT_TRUE(dpor.stats.exhausted);

  // Dependent-step scenarios do backtrack — the counter is live.
  const scenarios::NamedScenario* lo = scenarios::find("lock_order");
  ASSERT_NE(lo, nullptr);
  const Exploration lodpor =
      explore(*lo, Reduction::Dpor, 8, 1, /*canonicalizeFailures=*/false);
  EXPECT_GT(lodpor.stats.dporBacktracks, 0u);
  EXPECT_EQ(lodpor.stats.dporBacktracks + 1, lodpor.stats.runs);
}

// Unbounded exploration (no branch-depth limit) on scenarios whose full
// tree is tractable: here DPOR owes the *exact* failure semantics of full
// enumeration, with no bounded-POR caveat.
TEST(SchedDporTest, UnboundedEquivalenceOnTractableScenarios) {
  for (const char* name : {"lock_order", "disjoint"}) {
    const scenarios::NamedScenario* sc = scenarios::find(name);
    ASSERT_NE(sc, nullptr);
    SCOPED_TRACE(name);
    const Exploration none =
        explore(*sc, Reduction::None, static_cast<std::size_t>(-1), 1,
                /*canonicalizeFailures=*/true);
    const Exploration dpor =
        explore(*sc, Reduction::Dpor, static_cast<std::size_t>(-1), 1,
                /*canonicalizeFailures=*/false);
    ASSERT_TRUE(none.stats.exhausted);
    ASSERT_TRUE(dpor.stats.exhausted);
    EXPECT_EQ(dpor.deadlockSigs, none.deadlockSigs);
    EXPECT_EQ(dpor.stats.firstFailure, none.minCanonicalFailure);
    EXPECT_LT(dpor.stats.runs, none.stats.runs);
  }
}
