// Unit tests for the ConAn abstract clock in both execution modes:
// await/tick/time semantics, auto-advance idle handling, event emission.
#include <gtest/gtest.h>

#include <vector>

#include "confail/clock/abstract_clock.hpp"
#include "confail/events/trace.hpp"
#include "confail/monitor/monitor.hpp"
#include "confail/monitor/runtime.hpp"
#include "confail/sched/virtual_scheduler.hpp"

namespace ev = confail::events;
using confail::clock::AbstractClock;
using confail::monitor::Runtime;
namespace sched = confail::sched;
using sched::Outcome;

namespace {
struct Harness {
  ev::Trace trace;
  sched::RoundRobinStrategy strategy;
  sched::VirtualScheduler sched{strategy};
  Runtime rt{trace, sched, 1};
  AbstractClock clk{rt};
};
}  // namespace

TEST(AbstractClock, StartsAtZero) {
  Harness h;
  EXPECT_EQ(h.clk.time(), 0u);
}

TEST(AbstractClock, AwaitPastTimeReturnsImmediately) {
  Harness h;
  bool ran = false;
  h.rt.spawn("t", [&] {
    h.clk.await(0);
    ran = true;
  });
  EXPECT_EQ(h.sched.run().outcome, Outcome::Completed);
  EXPECT_TRUE(ran);
}

TEST(AbstractClock, AutoAdvanceWakesAwaitersInTimeOrder) {
  Harness h;
  std::vector<int> order;
  h.rt.spawn("late", [&] {
    h.clk.await(5);
    order.push_back(5);
  });
  h.rt.spawn("early", [&] {
    h.clk.await(2);
    order.push_back(2);
  });
  auto r = h.sched.run();
  EXPECT_EQ(r.outcome, Outcome::Completed);
  EXPECT_EQ(order, (std::vector<int>{2, 5}));
  EXPECT_EQ(h.clk.time(), 5u);
}

TEST(AbstractClock, AutoAdvanceJumpsToEarliestTarget) {
  Harness h;
  std::uint64_t observed = 0;
  h.rt.spawn("t", [&] {
    h.clk.await(7);
    observed = h.clk.time();
  });
  EXPECT_EQ(h.sched.run().outcome, Outcome::Completed);
  EXPECT_EQ(observed, 7u);  // jumped straight to 7, no intermediate ticks
}

TEST(AbstractClock, ManualTickWakesDueAwaiters) {
  Harness h;
  h.clk.setAutoAdvance(false);
  bool woke = false;
  h.rt.spawn("sleeper", [&] {
    h.clk.await(1);
    woke = true;
  });
  h.rt.spawn("ticker", [&] {
    h.rt.schedulePoint();  // let sleeper park first
    h.clk.tick();
  });
  auto r = h.sched.run();
  EXPECT_EQ(r.outcome, Outcome::Completed);
  EXPECT_TRUE(woke);
  EXPECT_EQ(h.clk.time(), 1u);
}

TEST(AbstractClock, WithoutAutoAdvanceAwaitersDeadlock) {
  Harness h;
  h.clk.setAutoAdvance(false);
  h.rt.spawn("stuck", [&] { h.clk.await(3); });
  auto r = h.sched.run();
  ASSERT_EQ(r.outcome, Outcome::Deadlock);
  ASSERT_EQ(r.blocked.size(), 1u);
  EXPECT_EQ(r.blocked[0].kind, sched::BlockKind::ClockAwait);
  EXPECT_EQ(r.blocked[0].resource, 3u);
}

TEST(AbstractClock, EmitsAwaitAndTickEvents) {
  Harness h;
  h.rt.spawn("t", [&] { h.clk.await(2); });
  h.sched.run();
  std::size_t awaits = 0, ticks = 0;
  for (const auto& e : h.trace.events()) {
    if (e.kind == ev::EventKind::ClockAwait) ++awaits;
    if (e.kind == ev::EventKind::ClockTick) ++ticks;
  }
  EXPECT_EQ(awaits, 1u);
  EXPECT_GE(ticks, 1u);
}

TEST(AbstractClock, InterleavesWithMonitorBlocking) {
  // A waiter parks on a monitor; the clock must not advance past a
  // runnable thread: only when all threads are blocked does time move.
  Harness h;
  confail::monitor::Monitor m(h.rt, "m");
  std::vector<std::string> sequence;
  bool ready = false;
  h.rt.spawn("waiter", [&] {
    confail::monitor::Synchronized sync(m);
    while (!ready) m.wait();
    sequence.push_back("woken@" + std::to_string(h.clk.time()));
  });
  h.rt.spawn("timed", [&] {
    h.clk.await(3);
    confail::monitor::Synchronized sync(m);
    ready = true;
    sequence.push_back("notify@" + std::to_string(h.clk.time()));
    m.notifyAll();
  });
  auto r = h.sched.run();
  ASSERT_EQ(r.outcome, Outcome::Completed);
  ASSERT_EQ(sequence.size(), 2u);
  EXPECT_EQ(sequence[0], "notify@3");
  EXPECT_EQ(sequence[1], "woken@3");
}

TEST(AbstractClockReal, TickAndAwait) {
  ev::Trace trace;
  Runtime rt(trace, 1);
  AbstractClock clk(rt);
  std::uint64_t seen = 0;
  rt.spawn("sleeper", [&] {
    clk.await(3);
    seen = clk.time();
  });
  rt.spawn("ticker", [&] {
    for (int i = 0; i < 3; ++i) clk.tick();
  });
  rt.joinAll();
  EXPECT_GE(seen, 3u);
  EXPECT_EQ(clk.time(), 3u);
}
