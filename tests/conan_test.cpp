// Unit tests for the ConAn-style deterministic test driver: scripted call
// ordering, completion-tick checking, value checking, expectHang handling —
// exercised against the real ProducerConsumer and seeded mutants.
#include <gtest/gtest.h>

#include "confail/clock/abstract_clock.hpp"
#include "confail/components/producer_consumer.hpp"
#include "confail/conan/test_driver.hpp"
#include "confail/events/trace.hpp"
#include "confail/monitor/runtime.hpp"
#include "confail/sched/virtual_scheduler.hpp"

namespace ev = confail::events;
namespace sched = confail::sched;
using confail::clock::AbstractClock;
using confail::components::ProducerConsumer;
using confail::conan::Call;
using confail::conan::Results;
using confail::conan::TestDriver;
using confail::monitor::Runtime;
using sched::Outcome;

namespace {
struct Harness {
  ev::Trace trace;
  sched::RoundRobinStrategy strategy;
  sched::VirtualScheduler sched{strategy};
  Runtime rt{trace, sched, 1};
  AbstractClock clk{rt};
  TestDriver driver{rt, clk};
};

Call receiveCall(ProducerConsumer& pc, std::string thread, std::uint64_t at,
                 char expect, std::uint64_t completeLo, std::uint64_t completeHi) {
  Call c;
  c.thread = std::move(thread);
  c.startTick = at;
  c.label = "receive()";
  c.action = [&pc]() -> std::int64_t { return pc.receive(); };
  c.completionWindow = {{completeLo, completeHi}};
  c.expectedValue = static_cast<std::int64_t>(expect);
  return c;
}
}  // namespace

TEST(TestDriver, OrderedSendReceivePasses) {
  Harness h;
  ProducerConsumer pc(h.rt);
  h.driver.addVoid("producer", 1, "send(ab)", [&pc] { pc.send("ab"); },
                   {{1, 1}});
  h.driver.add(receiveCall(pc, "consumer", 2, 'a', 2, 2));
  h.driver.add(receiveCall(pc, "consumer", 3, 'b', 3, 3));
  Results res = h.driver.execute();
  EXPECT_EQ(res.run.outcome, Outcome::Completed);
  EXPECT_TRUE(res.allPassed()) << res.describe();
}

TEST(TestDriver, ReceiveBeforeSendIsDelayedUntilNotified) {
  // The consumer calls receive() at tick 1 (buffer empty: suspends, T3);
  // the producer sends at tick 3; the receive completes at tick 3 (T5, T2).
  Harness h;
  ProducerConsumer pc(h.rt);
  Call r = receiveCall(pc, "consumer", 1, 'x', 3, 3);
  r.expectWait = true;
  h.driver.add(r);
  h.driver.addVoid("producer", 3, "send(x)", [&pc] { pc.send("x"); }, {{3, 3}});
  Results res = h.driver.execute();
  EXPECT_EQ(res.run.outcome, Outcome::Completed);
  EXPECT_TRUE(res.allPassed()) << res.describe();
}

TEST(TestDriver, WrongExpectedValueFails) {
  Harness h;
  ProducerConsumer pc(h.rt);
  h.driver.addVoid("producer", 1, "send(z)", [&pc] { pc.send("z"); });
  h.driver.add(receiveCall(pc, "consumer", 2, 'q', 2, 2));  // expect wrong char
  Results res = h.driver.execute();
  EXPECT_FALSE(res.allPassed());
  EXPECT_EQ(res.failures(), 1u);
  EXPECT_FALSE(res.reports[1].valueOk);
  EXPECT_TRUE(res.reports[1].timeOk);
}

TEST(TestDriver, CompletionOutsideWindowFails) {
  // Consumer at tick 1 must wait until the producer's tick-4 send, so a
  // completion window of [1,2] is violated.
  Harness h;
  ProducerConsumer pc(h.rt);
  h.driver.add(receiveCall(pc, "consumer", 1, 'x', 1, 2));
  h.driver.addVoid("producer", 4, "send(x)", [&pc] { pc.send("x"); });
  Results res = h.driver.execute();
  EXPECT_FALSE(res.allPassed());
  EXPECT_FALSE(res.reports[0].timeOk);
  EXPECT_EQ(res.reports[0].completedAtTick, 4u);
}

TEST(TestDriver, ExpectHangOnLostNotification) {
  // Mutant: send never notifies -> the suspended receive hangs forever.
  Harness h;
  ProducerConsumer::Faults f;
  f.skipNotify = true;
  ProducerConsumer pc(h.rt, f);
  Call r = receiveCall(pc, "consumer", 1, 'x', 2, 2);
  r.completionWindow.reset();
  r.expectedValue.reset();
  r.expectHang = true;
  h.driver.add(r);
  h.driver.addVoid("producer", 2, "send(x)", [&pc] { pc.send("x"); }, {{2, 2}});
  Results res = h.driver.execute();
  EXPECT_EQ(res.run.outcome, Outcome::Deadlock);
  EXPECT_TRUE(res.allPassed()) << res.describe();
}

TEST(TestDriver, UnexpectedHangFails) {
  Harness h;
  ProducerConsumer::Faults f;
  f.skipNotify = true;
  ProducerConsumer pc(h.rt, f);
  h.driver.add(receiveCall(pc, "consumer", 1, 'x', 2, 2));  // not expected to hang
  h.driver.addVoid("producer", 2, "send(x)", [&pc] { pc.send("x"); });
  Results res = h.driver.execute();
  EXPECT_EQ(res.run.outcome, Outcome::Deadlock);
  EXPECT_FALSE(res.allPassed());
  EXPECT_FALSE(res.reports[0].completed);
  EXPECT_FALSE(res.reports[0].hangOk);
}

TEST(TestDriver, ActionExceptionIsCapturedNotFatal) {
  Harness h;
  h.driver.addVoid("t", 1, "thrower",
                   [] { throw std::runtime_error("component bug"); });
  h.driver.addVoid("t", 2, "after", [] {}, {{2, 2}});
  Results res = h.driver.execute();
  EXPECT_EQ(res.run.outcome, Outcome::Completed);
  ASSERT_EQ(res.reports.size(), 2u);
  EXPECT_EQ(res.reports[0].error, "component bug");
  EXPECT_FALSE(res.reports[0].passed());
  EXPECT_TRUE(res.reports[1].passed());  // the thread carried on
}

TEST(TestDriver, CallsOnOneThreadRunInInsertionOrder) {
  Harness h;
  std::vector<int> order;
  h.driver.addVoid("t", 2, "second", [&order] { order.push_back(2); });
  // Same thread, earlier tick, but added later: runs after "second"
  // finishes awaiting? No — insertion order governs the thread's program:
  // the thread awaits tick 2, runs, then awaits tick 1 (already past).
  h.driver.addVoid("t", 1, "first-added-late", [&order] { order.push_back(1); });
  Results res = h.driver.execute();
  EXPECT_EQ(res.run.outcome, Outcome::Completed);
  EXPECT_EQ(order, (std::vector<int>{2, 1}));
}

TEST(TestDriver, MultipleThreadsInterleaveByTicks) {
  Harness h;
  std::vector<std::string> log;
  h.driver.addVoid("a", 1, "a1", [&log] { log.push_back("a1"); });
  h.driver.addVoid("b", 2, "b2", [&log] { log.push_back("b2"); });
  h.driver.addVoid("a", 3, "a3", [&log] { log.push_back("a3"); });
  h.driver.addVoid("b", 4, "b4", [&log] { log.push_back("b4"); });
  Results res = h.driver.execute();
  EXPECT_EQ(res.run.outcome, Outcome::Completed);
  EXPECT_EQ(log, (std::vector<std::string>{"a1", "b2", "a3", "b4"}));
}

TEST(TestDriver, RealModeRunsToCompletion) {
  ev::Trace trace;
  Runtime rt(trace, 2);
  AbstractClock clk(rt);
  TestDriver driver(rt, clk);
  ProducerConsumer pc(rt);
  driver.addVoid("producer", 1, "send(hi)", [&pc] { pc.send("hi"); });
  Call r;
  r.thread = "consumer";
  r.startTick = 2;
  r.label = "receive()";
  r.action = [&pc]() -> std::int64_t { return pc.receive(); };
  r.expectedValue = 'h';
  driver.add(r);
  Call r2 = r;
  r2.startTick = 3;
  r2.expectedValue = 'i';
  driver.add(r2);
  Results res = driver.execute();
  EXPECT_TRUE(res.allPassed()) << res.describe();
}

TEST(TestDriver, RealModeRejectsExpectHang) {
  ev::Trace trace;
  Runtime rt(trace, 2);
  AbstractClock clk(rt);
  TestDriver driver(rt, clk);
  Call c;
  c.thread = "t";
  c.startTick = 1;
  c.label = "x";
  c.action = [] { return std::int64_t{0}; };
  c.expectHang = true;
  driver.add(c);
  EXPECT_THROW(driver.execute(), confail::UsageError);
}
