// Streaming ingest: the bounded-cost ring, the JSONL/Chrome decoders, the
// IngestPipeline, and the differential contract — replaying a recorded
// run's event stream through the incremental battery must reproduce the
// offline DetectorSuite's findings byte for byte (documents included).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "confail/components/scenario_registry.hpp"
#include "confail/detect/report_sink.hpp"
#include "confail/detect/streaming_suite.hpp"
#include "confail/detect/suite.hpp"
#include "confail/events/trace.hpp"
#include "confail/gen/generator.hpp"
#include "confail/gen/interpret.hpp"
#include "confail/ingest/decode.hpp"
#include "confail/ingest/pipeline.hpp"
#include "confail/ingest/ring.hpp"
#include "confail/inject/campaign.hpp"
#include "confail/inject/explore_config.hpp"
#include "confail/obs/json.hpp"
#include "confail/obs/metrics.hpp"
#include "confail/obs/trace_export.hpp"

namespace {

using confail::events::Event;
using confail::events::EventKind;
using confail::events::Trace;
namespace detect = confail::detect;
namespace ingest = confail::ingest;
namespace obs = confail::obs;
namespace scenarios = confail::components::scenarios;

#if defined(__SANITIZE_THREAD__)
constexpr bool kSanitized = true;
#else
constexpr bool kSanitized = false;
#endif

// ---------------------------------------------------------------------------
// SpscRing
// ---------------------------------------------------------------------------

TEST(SpscRing, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(ingest::SpscRing<int>(1).capacity(), 2u);
  EXPECT_EQ(ingest::SpscRing<int>(3).capacity(), 4u);
  EXPECT_EQ(ingest::SpscRing<int>(64).capacity(), 64u);
  EXPECT_EQ(ingest::SpscRing<int>(65).capacity(), 128u);
}

TEST(SpscRing, FifoOrderAcrossWraparound) {
  ingest::SpscRing<int> ring(4);
  int out = 0;
  EXPECT_FALSE(ring.tryPop(out));
  // Push/pop interleaved far past the capacity: order must survive the
  // index wraparound.
  int next = 0;
  for (int v = 0; v < 1000; ++v) {
    if (!ring.tryPush(v)) {
      ASSERT_TRUE(ring.tryPop(out));
      ASSERT_EQ(out, next++);
      ASSERT_TRUE(ring.tryPush(v));
    }
  }
  while (ring.tryPop(out)) {
    ASSERT_EQ(out, next++);
  }
  EXPECT_EQ(next, 1000);
  EXPECT_EQ(ring.drops(), 0u);
}

TEST(SpscRing, OverflowDropsAreCountedNotStored) {
  ingest::SpscRing<int> ring(2);
  ASSERT_TRUE(ring.pushOrDrop(1));
  ASSERT_TRUE(ring.pushOrDrop(2));
  EXPECT_FALSE(ring.tryPush(3));
  EXPECT_EQ(ring.drops(), 0u);  // tryPush never counts
  EXPECT_FALSE(ring.pushOrDrop(3));
  EXPECT_FALSE(ring.pushOrDrop(4));
  EXPECT_EQ(ring.drops(), 2u);
  int out = 0;
  ASSERT_TRUE(ring.tryPop(out));
  EXPECT_EQ(out, 1);
  ASSERT_TRUE(ring.tryPop(out));
  EXPECT_EQ(out, 2);
  EXPECT_FALSE(ring.tryPop(out));
}

TEST(SpscRing, ConcurrentProducerConsumerLosesNothing) {
  const int n = kSanitized ? 20000 : 200000;
  ingest::SpscRing<int> ring(64);
  std::thread producer([&] {
    for (int v = 0; v < n; ++v) {
      while (!ring.tryPush(v)) {
        std::this_thread::yield();
      }
    }
  });
  int expected = 0;
  int out = 0;
  while (expected < n) {
    if (ring.tryPop(out)) {
      ASSERT_EQ(out, expected++);
    }
  }
  producer.join();
  EXPECT_EQ(ring.drops(), 0u);
  EXPECT_EQ(ring.approxSize(), 0u);
}

// ---------------------------------------------------------------------------
// NameTable
// ---------------------------------------------------------------------------

TEST(NameTable, FallbacksMatchTraceConvention) {
  ingest::NameTable names;
  Trace trace;
  // Unregistered ids must render identically on both paths — that is what
  // makes streaming and offline reports byte-comparable.
  EXPECT_EQ(names.threadName(7), trace.threadName(7));
  EXPECT_EQ(names.monitorName(3), trace.monitorName(3));
  EXPECT_EQ(names.varName(0), trace.varName(0));
  EXPECT_EQ(names.methodName(9), trace.methodName(9));
  names.thread(1, "worker");
  trace.nameThread(1, "worker");
  EXPECT_EQ(names.threadName(1), trace.threadName(1));
}

TEST(NameTable, InternAssignsDenseIdsFirstSeen) {
  ingest::NameTable names;
  EXPECT_EQ(names.internThread("a"), 0u);
  EXPECT_EQ(names.internThread("b"), 1u);
  EXPECT_EQ(names.internThread("a"), 0u);
  EXPECT_EQ(names.threadName(1), "b");
}

// ---------------------------------------------------------------------------
// Shared helpers
// ---------------------------------------------------------------------------

Trace captureScenario(const scenarios::NamedScenario& sc) {
  Trace trace;
  obs::Registry metrics;
  confail::inject::ExploreConfig cfg;
  cfg.scenario(sc);
  cfg.capture(trace, metrics);
  return trace;
}

detect::ReportSink offlineSink(const Trace& trace) {
  detect::DetectorSuite suite;
  detect::ReportSink sink;
  sink.setSource("differential");
  for (const auto& report : suite.analyzeEach(trace)) {
    sink.addAll(report.detector, report.findings);
  }
  return sink;
}

/// The differential contract: JSONL export -> pipeline -> findings equal
/// the offline battery's, as rendered documents (JSON and SARIF).
void expectStreamingMatchesOffline(const Trace& trace,
                                   ingest::IngestOptions opts = {}) {
  const detect::ReportSink offline = offlineSink(trace);

  ingest::IngestPipeline pipe(opts);
  detect::ReportSink online;
  online.setSource("differential");
  std::istringstream in(obs::toJsonl(trace));
  const ingest::IngestStats st = pipe.run(in, online);

  EXPECT_EQ(st.malformed, 0u);
  EXPECT_EQ(st.truncated, 0u);
  EXPECT_EQ(st.ringDrops, 0u);
  ASSERT_EQ(st.eventsAnalyzed, trace.size());

  const detect::TraceNames offNames(trace);
  EXPECT_EQ(offline.toJson(offNames), online.toJson(pipe.names()));
  EXPECT_EQ(offline.toSarif(offNames), online.toSarif(pipe.names()));
}

// ---------------------------------------------------------------------------
// JsonlDecoder
// ---------------------------------------------------------------------------

TEST(JsonlDecoder, LosslessRoundTripOnEveryRegistryScenario) {
  for (const scenarios::NamedScenario& sc : scenarios::registry()) {
    const Trace trace = captureScenario(sc);
    const std::string jsonl = obs::toJsonl(trace);

    ingest::JsonlDecoder dec;
    std::vector<Event> decoded;
    const auto emit = [&](const Event& e) { decoded.push_back(e); };
    // Feed in deliberately awkward 7-byte chunks: every line crosses a
    // chunk boundary somewhere.
    for (std::size_t i = 0; i < jsonl.size(); i += 7) {
      dec.feed(std::string_view(jsonl).substr(i, 7), emit);
    }
    dec.flush(emit);

    EXPECT_EQ(dec.stats().malformed, 0u) << sc.name;
    EXPECT_EQ(dec.stats().truncated, 0u) << sc.name;
    ASSERT_EQ(decoded, trace.events()) << sc.name;
    for (const Event& e : decoded) {
      if (e.thread != confail::events::kNoThread) {
        EXPECT_EQ(dec.names().threadName(e.thread),
                  trace.threadName(e.thread));
      }
      if (e.monitor != confail::events::kNoMonitor) {
        EXPECT_EQ(dec.names().monitorName(e.monitor),
                  trace.monitorName(e.monitor));
      }
    }
  }
}

TEST(JsonlDecoder, UnterminatedTailThatParsesIsEmittedAtFlush) {
  const Trace trace = captureScenario(*scenarios::find("fig2"));
  std::string jsonl = obs::toJsonl(trace);
  ASSERT_EQ(jsonl.back(), '\n');
  jsonl.pop_back();  // writer crashed before the final newline

  ingest::JsonlDecoder dec;
  std::vector<Event> decoded;
  const auto emit = [&](const Event& e) { decoded.push_back(e); };
  dec.feed(jsonl, emit);
  EXPECT_TRUE(dec.hasPartialLine());
  dec.flush(emit);
  EXPECT_EQ(dec.stats().truncated, 0u);
  EXPECT_EQ(decoded, trace.events());
}

TEST(JsonlDecoder, TruncatedTailIsCountedAndDropped) {
  const Trace trace = captureScenario(*scenarios::find("fig2"));
  const std::string jsonl = obs::toJsonl(trace);
  const std::size_t firstLine = jsonl.find('\n') + 1;
  // First full line plus half of the second: the torn half-object must not
  // become a phantom event.
  const std::string torn = jsonl.substr(0, firstLine + 20);

  ingest::JsonlDecoder dec;
  std::vector<Event> decoded;
  const auto emit = [&](const Event& e) { decoded.push_back(e); };
  dec.feed(torn, emit);
  dec.flush(emit);
  EXPECT_EQ(decoded.size(), 1u);
  EXPECT_EQ(dec.stats().truncated, 1u);
  EXPECT_EQ(dec.stats().malformed, 0u);
}

TEST(JsonlDecoder, MalformedCompleteLineIsSkippedNotFatal) {
  const Trace trace = captureScenario(*scenarios::find("fig2"));
  const std::string jsonl = obs::toJsonl(trace);
  ingest::JsonlDecoder dec;
  std::vector<Event> decoded;
  const auto emit = [&](const Event& e) { decoded.push_back(e); };
  dec.feed("this is not json\n", emit);
  dec.feed(jsonl, emit);
  dec.flush(emit);
  EXPECT_EQ(dec.stats().malformed, 1u);
  EXPECT_EQ(decoded, trace.events());
}

// ---------------------------------------------------------------------------
// StreamingSuite differential
// ---------------------------------------------------------------------------

TEST(StreamingSuite, FindingsMatchOfflineBatteryOnEveryRegistryScenario) {
  for (const scenarios::NamedScenario& sc : scenarios::registry()) {
    const Trace trace = captureScenario(sc);

    detect::DetectorSuite offline;
    const std::vector<detect::Finding> expected = offline.analyze(trace);

    detect::StreamingSuite streaming;
    for (const Event& e : trace.events()) streaming.feed(e);
    streaming.finish(detect::TraceNames(trace));
    const std::vector<detect::Finding> got = streaming.findings();

    ASSERT_EQ(got.size(), expected.size()) << sc.name;
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].kind, expected[i].kind) << sc.name;
      EXPECT_EQ(got[i].message, expected[i].message) << sc.name;
      EXPECT_EQ(got[i].thread, expected[i].thread) << sc.name;
      EXPECT_EQ(got[i].thread2, expected[i].thread2) << sc.name;
      EXPECT_EQ(got[i].monitor, expected[i].monitor) << sc.name;
      EXPECT_EQ(got[i].var, expected[i].var) << sc.name;
      EXPECT_EQ(got[i].seq, expected[i].seq) << sc.name;
    }
  }
}

// ---------------------------------------------------------------------------
// IngestPipeline differential
// ---------------------------------------------------------------------------

TEST(IngestPipeline, DifferentialOnEveryRegistryScenario) {
  for (const scenarios::NamedScenario& sc : scenarios::registry()) {
    SCOPED_TRACE(sc.name);
    expectStreamingMatchesOffline(captureScenario(sc));
  }
}

TEST(IngestPipeline, DifferentialOnWorkerRecordedRuns) {
  // Runs recorded under parallel exploration (1/2/8 workers) stream the
  // same as single-run captures: the pipeline only sees the per-run trace.
  const scenarios::NamedScenario& sc = *scenarios::find("fig2");
  for (std::size_t workers : {1u, 2u, 8u}) {
    confail::sched::ExhaustiveExplorer::Options eo;
    eo.maxRuns = 12;
    eo.maxSteps = 2000;
    eo.maxBranchDepth = 3;
    eo.workers = workers;
    confail::inject::ExploreConfig cfg;
    cfg.scenario(sc).captureRuns().explorer(eo);
    std::vector<std::string> recorded;  // observer is serialized
    (void)cfg.explore([&](const confail::inject::RunView& v) {
      if (v.trace != nullptr && recorded.size() < 4) {
        recorded.push_back(v.trace->serialize());
      }
      return recorded.size() < 4;
    });
    ASSERT_FALSE(recorded.empty());
    for (const std::string& s : recorded) {
      SCOPED_TRACE("workers=" + std::to_string(workers));
      expectStreamingMatchesOffline(Trace::deserialize(s));
    }
  }
}

TEST(IngestPipeline, DifferentialOnFuzzerPrograms) {
  const std::uint64_t seeds = kSanitized ? 10 : 50;
  confail::gen::GenConfig cfg;
  for (std::uint64_t seed = 0; seed < seeds; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    const confail::gen::Program p = confail::gen::generate(seed, cfg);
    const auto sc = confail::gen::asScenario(p, "gen_stream_test");
    expectStreamingMatchesOffline(captureScenario(sc));
  }
}

TEST(IngestPipeline, MultiMegabyteStreamThroughTinyRing) {
  // A synthetic multi-MB JSONL stream (far larger than the ring) must
  // stream loss-free through a deliberately tiny ring: backpressure, not
  // drops, and the differential still holds at scale.
  const int iters = kSanitized ? 2000 : 40000;
  Trace trace;
  trace.nameMonitor(0, "shared");
  trace.nameMonitor(1, "other");
  trace.nameVar(0, "counter");
  trace.nameVar(1, "flag");
  for (int t = 0; t < 3; ++t) {
    trace.nameThread(static_cast<std::uint32_t>(t),
                     "worker" + std::to_string(t));
  }
  for (int i = 0; i < iters; ++i) {
    const auto thread = static_cast<std::uint32_t>(i % 3);
    const std::uint32_t mon = i % 2 == 0 ? 0 : 1;
    const std::uint64_t var = i % 2 == 0 ? 0 : 1;
    Event e;
    e.thread = thread;
    e.kind = EventKind::LockRequest;
    e.monitor = mon;
    trace.record(e);
    e.kind = EventKind::LockAcquire;
    trace.record(e);
    e.kind = EventKind::Write;
    e.monitor = confail::events::kNoMonitor;
    e.aux = var;
    trace.record(e);
    e.kind = EventKind::Read;
    trace.record(e);
    e.kind = EventKind::LockRelease;
    e.monitor = mon;
    e.aux = 0;
    trace.record(e);
  }
  const std::string jsonl = obs::toJsonl(trace);
  if (!kSanitized) {
    EXPECT_GT(jsonl.size(), 4u * 1024 * 1024) << "stream should be multi-MB";
  }
  ingest::IngestOptions opts;
  opts.ringCapacity = 256;
  expectStreamingMatchesOffline(trace, opts);
}

TEST(IngestPipeline, FollowModeTailsARacingWriter) {
  // Regression for tailing a file under active append: the writer emits
  // the stream in small chunks that tear lines mid-object, racing the
  // reader; the reader must wait out partial writes and still reproduce
  // the offline findings exactly.
  const Trace trace = captureScenario(*scenarios::find("fig2"));
  const std::string jsonl = obs::toJsonl(trace);
  const std::string path =
      ::testing::TempDir() + "/confail_ingest_follow.jsonl";
  {
    std::ofstream create(path, std::ios::trunc);
    ASSERT_TRUE(create.good());
  }

  std::thread writer([&] {
    std::ofstream out(path, std::ios::app);
    // 13-byte chunks guarantee most lines land torn across writes.
    for (std::size_t i = 0; i < jsonl.size(); i += 13) {
      out.write(jsonl.data() + i,
                static_cast<std::streamsize>(
                    std::min<std::size_t>(13, jsonl.size() - i)));
      out.flush();
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });

  ingest::IngestOptions opts;
  opts.follow = true;
  opts.followIdleStopMs = 500;
  ingest::IngestPipeline pipe(opts);
  detect::ReportSink online;
  online.setSource("differential");
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  const ingest::IngestStats st = pipe.run(in, online);
  writer.join();

  EXPECT_EQ(st.truncated, 0u);
  EXPECT_EQ(st.malformed, 0u);
  ASSERT_EQ(st.eventsAnalyzed, trace.size());
  const detect::ReportSink offline = offlineSink(trace);
  EXPECT_EQ(offline.toJson(detect::TraceNames(trace)),
            online.toJson(pipe.names()));
  std::remove(path.c_str());
}

TEST(IngestPipeline, ChromeTraceDecodesToAnalyzableEvents) {
  // Chrome decode is best-effort (the exporter drops information), but a
  // round trip must produce a non-trivial, battery-consumable stream.
  const Trace trace = captureScenario(*scenarios::find("fig2"));
  ingest::IngestOptions opts;
  opts.format = ingest::StreamFormat::Chrome;
  ingest::IngestPipeline pipe(opts);
  detect::ReportSink sink;
  std::istringstream in(obs::toChromeTrace(trace));
  const ingest::IngestStats st = pipe.run(in, sink);
  EXPECT_GT(st.eventsAnalyzed, trace.size() / 2);
  EXPECT_EQ(st.ringDrops, 0u);
  // Thread names survive via the metadata records.
  EXPECT_EQ(pipe.names().threadName(0), trace.threadName(0));
}

// ---------------------------------------------------------------------------
// ReportSink
// ---------------------------------------------------------------------------

detect::Finding makeFinding(detect::FindingKind kind, const char* msg) {
  detect::Finding f;
  f.kind = kind;
  f.message = msg;
  f.thread = 0;
  f.monitor = 1;
  f.seq = 7;
  return f;
}

TEST(ReportSink, CapCountsOverflowInsteadOfGrowing) {
  detect::ReportSink sink(2);
  EXPECT_TRUE(sink.add("d", makeFinding(detect::FindingKind::DataRace, "a")));
  EXPECT_TRUE(sink.add("d", makeFinding(detect::FindingKind::DataRace, "b")));
  EXPECT_FALSE(sink.add("d", makeFinding(detect::FindingKind::DataRace, "c")));
  EXPECT_EQ(sink.size(), 2u);
  EXPECT_EQ(sink.dropped(), 1u);
  ingest::NameTable names;
  EXPECT_NE(sink.toJson(names).find("\"dropped\": 1"), std::string::npos);
}

TEST(ReportSink, SarifLevelsSplitFailuresFromEfficiencies) {
  EXPECT_STREQ(detect::sarifLevel(detect::FindingKind::DataRace), "error");
  EXPECT_STREQ(detect::sarifLevel(detect::FindingKind::DeadlockCycle),
               "error");
  EXPECT_STREQ(detect::sarifLevel(detect::FindingKind::WaitingForever),
               "error");
  EXPECT_STREQ(detect::sarifLevel(detect::FindingKind::UnnecessarySync),
               "warning");
  EXPECT_STREQ(detect::sarifLevel(detect::FindingKind::BargingAcquire),
               "warning");
}

TEST(ReportSink, SarifDocumentIsStructurallyValid) {
  const Trace trace = captureScenario(*scenarios::find("lock_order"));
  const detect::ReportSink sink = offlineSink(trace);
  ASSERT_GT(sink.size(), 0u);  // the deadlock scenario must yield findings

  const obs::JsonValue doc =
      obs::parseJson(sink.toSarif(detect::TraceNames(trace)));
  ASSERT_TRUE(doc.isObject());
  EXPECT_EQ(doc.get("version")->string, "2.1.0");
  const obs::JsonValue* runs = doc.get("runs");
  ASSERT_TRUE(runs != nullptr && runs->isArray());
  ASSERT_EQ(runs->array.size(), 1u);
  const obs::JsonValue& run = runs->array[0];
  EXPECT_EQ(run.get("tool")->get("driver")->get("name")->string, "confail");

  const obs::JsonValue* rules = run.get("tool")->get("driver")->get("rules");
  ASSERT_TRUE(rules != nullptr && rules->isArray());
  EXPECT_FALSE(rules->array.empty());
  std::vector<std::string> ruleIds;
  for (const obs::JsonValue& rule : rules->array) {
    ruleIds.push_back(rule.get("id")->string);
  }
  const obs::JsonValue* results = run.get("results");
  ASSERT_TRUE(results != nullptr && results->isArray());
  EXPECT_EQ(results->array.size(), sink.size());
  for (const obs::JsonValue& r : results->array) {
    EXPECT_NE(std::find(ruleIds.begin(), ruleIds.end(),
                        r.get("ruleId")->string),
              ruleIds.end());
    EXPECT_FALSE(r.get("message")->get("text")->string.empty());
  }
}

TEST(ReportSink, CampaignRoutesFindingsThroughSink) {
  const scenarios::NamedScenario& sc = *scenarios::find("fig2");
  confail::inject::CampaignOptions opts;
  opts.maxRuns = 200;
  opts.maxSteps = 2000;
  opts.maxBranchDepth = 3;
  detect::ReportSink sink;
  sink.setSource("campaign");
  opts.sink = &sink;
  const auto plan = confail::inject::defaultPlanFor(
      confail::taxonomy::FailureClass::FF_T5, sc);
  const auto cell = confail::inject::runCell(sc, plan, opts);
  EXPECT_TRUE(cell.caught);
  ASSERT_GT(sink.size(), 0u);
  bool sawWaitNotify = false;
  for (const auto& entry : sink.entries()) {
    if (entry.detector == "wait-notify") sawWaitNotify = true;
  }
  EXPECT_TRUE(sawWaitNotify);
}

// ---------------------------------------------------------------------------
// Bounded happens-before history (the memory-bound knob)
// ---------------------------------------------------------------------------

TEST(StreamingSuite, BoundedHbHistoryCountsEvictions) {
  const int vars = 64;
  Trace trace;
  for (int v = 0; v < vars; ++v) {
    Event e;
    e.thread = 0;
    e.kind = EventKind::Write;
    e.aux = static_cast<std::uint64_t>(v);
    trace.record(e);
  }
  detect::StreamingSuite::Options opts;
  opts.hbMaxVarHistory = 8;
  detect::StreamingSuite suite(opts);
  for (const Event& e : trace.events()) suite.feed(e);
  suite.finish(detect::TraceNames(trace));
  EXPECT_GT(suite.hbEvictions(), 0u);

  detect::StreamingSuite exact;
  for (const Event& e : trace.events()) exact.feed(e);
  exact.finish(detect::TraceNames(trace));
  EXPECT_EQ(exact.hbEvictions(), 0u);
}

}  // namespace
