// The gen subsystem: IR well-formedness, generator determinism (the
// property tests of docs/fuzzing.md), and the interpreter end-to-end on the
// exploration substrate, including worker-count determinism of generated
// programs.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "confail/gen/generator.hpp"
#include "confail/gen/interpret.hpp"
#include "confail/gen/ir.hpp"
#include "confail/gen/oracle.hpp"
#include "confail/sched/explorer.hpp"

namespace gen = confail::gen;
namespace sched = confail::sched;

namespace {

using gen::Op;
using gen::OpKind;

gen::Program oneThread(std::vector<Op> ops, std::uint8_t monitors = 1,
                       std::uint8_t vars = 1) {
  gen::Program p;
  p.monitors = monitors;
  p.vars = vars;
  p.threads.push_back(gen::ThreadIR{std::move(ops)});
  return p;
}

sched::ExhaustiveExplorer::Stats explore(const gen::Program& p,
                                         std::size_t workers = 1,
                                         std::size_t depth = 4) {
  sched::ExhaustiveExplorer::Options eo;
  eo.maxRuns = 200000;
  eo.maxSteps = 20000;
  eo.maxBranchDepth = depth;
  eo.workers = workers;
  sched::ExhaustiveExplorer ex(eo);
  return ex.explore([&p](sched::VirtualScheduler& s) { gen::interpret(p, s); },
                    [](const std::vector<sched::ThreadId>&,
                       const sched::RunResult&) { return true; });
}

}  // namespace

// ---- IR validation ---------------------------------------------------------

TEST(GenIr, AcceptsMinimalSelfWait) {
  const gen::Program p = oneThread(
      {{OpKind::Lock, 0}, {OpKind::Wait, 0}, {OpKind::Unlock, 0}});
  std::string why;
  EXPECT_TRUE(p.validate(&why)) << why;
  EXPECT_EQ(p.opCount(), 3u);
  EXPECT_TRUE(p.has(OpKind::Wait));
  EXPECT_FALSE(p.monitorShared());
}

TEST(GenIr, RejectsUnmatchedUnlock) {
  std::string why;
  EXPECT_FALSE(oneThread({{OpKind::Unlock, 0}}).validate(&why));
  EXPECT_NE(why.find("unlock"), std::string::npos) << why;
}

TEST(GenIr, RejectsNonInnermostUnlock) {
  const gen::Program p = oneThread({{OpKind::Lock, 0},
                                    {OpKind::Lock, 1},
                                    {OpKind::Unlock, 0},
                                    {OpKind::Unlock, 1}},
                                   /*monitors=*/2);
  EXPECT_FALSE(p.validate());
}

TEST(GenIr, RejectsWaitWithoutHoldingMonitor) {
  std::string why;
  EXPECT_FALSE(oneThread({{OpKind::Wait, 0}}).validate(&why));
  EXPECT_NE(why.find("holding"), std::string::npos) << why;
}

TEST(GenIr, RejectsLockHeldAtThreadEnd) {
  std::string why;
  EXPECT_FALSE(oneThread({{OpKind::Lock, 0}}).validate(&why));
  EXPECT_NE(why.find("thread end"), std::string::npos) << why;
}

TEST(GenIr, RejectsEmptyLoopBody) {
  const gen::Program p =
      oneThread({{OpKind::LoopBegin, 0, 2}, {OpKind::LoopEnd, 0}});
  std::string why;
  EXPECT_FALSE(p.validate(&why));
  EXPECT_NE(why.find("empty loop"), std::string::npos) << why;
}

TEST(GenIr, RejectsLockUnbalancedLoopBody) {
  const gen::Program p = oneThread({{OpKind::LoopBegin, 0, 2},
                                    {OpKind::Lock, 0},
                                    {OpKind::LoopEnd, 0},
                                    {OpKind::Unlock, 0}});
  EXPECT_FALSE(p.validate());
}

TEST(GenIr, RejectsUnlockCrossingLoopBoundary) {
  const gen::Program p = oneThread({{OpKind::Lock, 0},
                                    {OpKind::LoopBegin, 0, 1},
                                    {OpKind::Unlock, 0},
                                    {OpKind::LoopEnd, 0}});
  std::string why;
  EXPECT_FALSE(p.validate(&why));
  EXPECT_NE(why.find("loop boundary"), std::string::npos) << why;
}

TEST(GenIr, RejectsZeroIterationLoop) {
  const gen::Program p = oneThread(
      {{OpKind::LoopBegin, 0, 0}, {OpKind::Yield, 0}, {OpKind::LoopEnd, 0}});
  EXPECT_FALSE(p.validate());
}

TEST(GenIr, RejectsOutOfRangeObjectIndices) {
  EXPECT_FALSE(oneThread({{OpKind::Lock, 5}, {OpKind::Unlock, 5}}).validate());
  EXPECT_FALSE(oneThread({{OpKind::Read, 9}}).validate());
}

TEST(GenIr, RejectsTooDeepLockNesting) {
  std::vector<Op> ops;
  for (std::uint8_t i = 0; i < gen::kMaxLockNest + 1; ++i) {
    ops.push_back({OpKind::Lock, 0});
  }
  for (std::uint8_t i = 0; i < gen::kMaxLockNest + 1; ++i) {
    ops.push_back({OpKind::Unlock, 0});
  }
  EXPECT_FALSE(oneThread(std::move(ops)).validate());
}

TEST(GenIr, MonitorSharedNeedsTwoLockingThreads) {
  gen::Program p = oneThread({{OpKind::Lock, 0}, {OpKind::Unlock, 0}});
  EXPECT_FALSE(p.monitorShared());
  p.threads.push_back(
      gen::ThreadIR{{{OpKind::Lock, 0}, {OpKind::Unlock, 0}}});
  EXPECT_TRUE(p.monitorShared());
}

// ---- generator determinism (property tests) --------------------------------

TEST(GenGenerator, SameSeedAndConfigIsByteIdentical) {
  const gen::GenConfig cfg;
  for (std::uint64_t seed : {0ull, 1ull, 17ull, 123ull, 9999ull}) {
    const gen::Program a = gen::generate(seed, cfg);
    const gen::Program b = gen::generate(seed, cfg);
    EXPECT_EQ(a, b) << "seed " << seed;
    EXPECT_EQ(a.render(), b.render()) << "seed " << seed;
  }
}

TEST(GenGenerator, DistinctSeedsDrawDistinctPrograms) {
  const gen::GenConfig cfg;
  std::set<std::string> renders;
  for (std::uint64_t seed = 0; seed < 32; ++seed) {
    gen::Program p = gen::generate(seed, cfg);
    p.seed = 0;  // exclude the header line from the comparison
    renders.insert(p.render());
  }
  // Collisions are possible in principle but must be rare.
  EXPECT_GE(renders.size(), 30u);
}

TEST(GenGenerator, ConfigIsPartOfTheStream) {
  gen::GenConfig a;
  gen::GenConfig b;
  b.maxOpsPerThread = a.maxOpsPerThread + 2;
  EXPECT_NE(a.streamTag(), b.streamTag());
  gen::GenConfig c;
  c.cleanOnly = true;
  EXPECT_NE(a.streamTag(), c.streamTag());
}

TEST(GenGenerator, EveryDefaultTierProgramValidates) {
  const gen::GenConfig cfg;
  for (std::uint64_t seed = 0; seed < 300; ++seed) {
    const gen::Program p = gen::generate(seed, cfg);
    std::string why;
    EXPECT_TRUE(p.validate(&why))
        << "seed " << seed << ": " << why << "\n" << p.render();
    EXPECT_GE(p.threads.size(), 2u);
  }
}

TEST(GenGenerator, CleanTierIsStructurallyBenign) {
  gen::GenConfig cfg;
  cfg.cleanOnly = true;
  cfg.allowWaitNotify = false;
  for (std::uint64_t seed = 0; seed < 200; ++seed) {
    const gen::Program p = gen::generate(seed, cfg);
    std::string why;
    ASSERT_TRUE(p.validate(&why)) << "seed " << seed << ": " << why;
    EXPECT_FALSE(p.has(OpKind::Wait)) << p.render();
    EXPECT_FALSE(p.has(OpKind::Notify)) << p.render();
    EXPECT_FALSE(p.has(OpKind::NotifyAll)) << p.render();
    // Ascending lock order (deadlock-free) and every access guarded by the
    // var's designated monitor (race-free): walk each thread's lock stack.
    for (const gen::ThreadIR& t : p.threads) {
      std::vector<std::uint8_t> stack;
      for (const Op& op : t.ops) {
        if (op.kind == OpKind::Lock) {
          if (!stack.empty()) {
            EXPECT_LT(stack.back(), op.obj) << "seed " << seed << "\n"
                                            << p.render();
          }
          stack.push_back(op.obj);
        } else if (op.kind == OpKind::Unlock) {
          ASSERT_FALSE(stack.empty());
          stack.pop_back();
        } else if (op.kind == OpKind::Read || op.kind == OpKind::Write) {
          const std::uint8_t guard =
              static_cast<std::uint8_t>(op.obj % p.monitors);
          EXPECT_NE(std::find(stack.begin(), stack.end(), guard), stack.end())
              << "seed " << seed << " unguarded v" << int(op.obj) << "\n"
              << p.render();
        }
      }
    }
  }
}

// ---- interpreter end-to-end ------------------------------------------------

TEST(GenInterpret, SelfWaitDeadlocksOnItsOnlySchedule) {
  const gen::Program p = oneThread(
      {{OpKind::Lock, 0}, {OpKind::Wait, 0}, {OpKind::Unlock, 0}});
  const auto st = explore(p);
  EXPECT_TRUE(st.exhausted);
  EXPECT_EQ(st.deadlocks, st.runs);
  EXPECT_GE(st.runs, 1u);
}

TEST(GenInterpret, CleanTierProgramsCompleteOnEverySchedule) {
  gen::GenConfig cfg;
  cfg.cleanOnly = true;
  cfg.allowWaitNotify = false;
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const gen::Program p = gen::generate(seed, cfg);
    const auto st = explore(p);
    ASSERT_TRUE(st.exhausted) << "seed " << seed;
    EXPECT_EQ(st.completed, st.runs) << "seed " << seed << "\n" << p.render();
    EXPECT_EQ(st.deadlocks, 0u);
    EXPECT_EQ(st.exceptions, 0u);
  }
}

TEST(GenInterpret, LoopsExecuteTheirIterationCount) {
  // A loop writing v0 twice from one thread: final shared-var value is
  // observable through the schedule count being 1 (single thread) and the
  // run completing — the loop must terminate after exactly `iters` rounds.
  const gen::Program p = oneThread({{OpKind::LoopBegin, 0, 2},
                                    {OpKind::Lock, 0},
                                    {OpKind::Write, 0},
                                    {OpKind::Unlock, 0},
                                    {OpKind::LoopEnd, 0}});
  ASSERT_TRUE(p.validate());
  const auto st = explore(p);
  EXPECT_TRUE(st.exhausted);
  EXPECT_EQ(st.completed, st.runs);
}

TEST(GenInterpret, WorkerCountsProduceIdenticalSummaries) {
  const gen::GenConfig cfg;
  for (std::uint64_t seed : {0ull, 5ull, 9ull}) {
    const gen::Program p = gen::generate(seed, cfg);
    const auto base = explore(p, 1);
    ASSERT_TRUE(base.exhausted) << "seed " << seed;
    for (std::size_t workers : {2u, 8u}) {
      const auto st = explore(p, workers);
      EXPECT_EQ(st.runs, base.runs) << "seed " << seed << " w" << workers;
      EXPECT_EQ(st.completed, base.completed)
          << "seed " << seed << " w" << workers;
      EXPECT_EQ(st.deadlocks, base.deadlocks)
          << "seed " << seed << " w" << workers;
      EXPECT_EQ(st.stepLimited, base.stepLimited)
          << "seed " << seed << " w" << workers;
      EXPECT_EQ(st.exceptions, base.exceptions)
          << "seed " << seed << " w" << workers;
      EXPECT_TRUE(st.exhausted);
    }
  }
}

TEST(GenInterpret, AsScenarioComputesCapabilityFlags) {
  const gen::GenConfig cfg;
  const gen::Program p = gen::generate(54, cfg);  // has lock + wait + notify
  ASSERT_TRUE(p.has(OpKind::Wait));
  const auto sc = gen::asScenario(p, "fuzz_54");
  EXPECT_EQ(sc.name, "fuzz_54");
  EXPECT_TRUE(sc.faultSeeded);
  EXPECT_TRUE(sc.usesMonitor);
  EXPECT_TRUE(sc.usesWaitNotify);
  EXPECT_FALSE(sc.hasBuffer);
  ASSERT_TRUE(static_cast<bool>(sc.fn));

  // The wrapped scenario must drive the explorer exactly like interpret().
  sched::ExhaustiveExplorer::Options eo;
  eo.maxRuns = 200000;
  eo.maxSteps = 20000;
  eo.maxBranchDepth = 4;
  sched::ExhaustiveExplorer ex(eo);
  const auto st =
      ex.explore(sc.fn, [](const std::vector<sched::ThreadId>&,
                           const sched::RunResult&) { return true; });
  const auto direct = explore(p);
  EXPECT_EQ(st.runs, direct.runs);
  EXPECT_EQ(st.deadlocks, direct.deadlocks);
}

// ---- oracle harness plumbing ----------------------------------------------

TEST(GenOracle, OnlyOracleRestrictsToOneCheck) {
  gen::OracleConfig oc;
  const gen::OracleConfig one = gen::onlyOracle(oc, "worker-determinism");
  EXPECT_FALSE(one.checkIncremental);
  EXPECT_FALSE(one.checkReductions);
  EXPECT_TRUE(one.checkWorkers);
  EXPECT_FALSE(one.checkClean);
  EXPECT_FALSE(one.checkInjection);
  const gen::OracleConfig none = gen::onlyOracle(oc, "no-such-oracle");
  EXPECT_FALSE(none.checkIncremental && none.checkWorkers);
}

TEST(GenOracle, PassesOnAKnownGoodSeedAndSabotageTrips) {
  const gen::GenConfig cfg;
  const gen::Program p = gen::generate(0, cfg);  // deadlocks within bounds
  gen::OracleConfig oc;
  oc.checkReductions = false;  // keep the unit test fast
  oc.checkInjection = false;
  const auto clean = gen::runOracles(p, oc);
  EXPECT_TRUE(clean.ok()) << (clean.firstFailure() != nullptr
                                  ? clean.firstFailure()->detail
                                  : "");
  gen::OracleConfig bad = oc;
  bad.sabotage = gen::Sabotage::DropDeadlocks;
  const auto tripped = gen::runOracles(p, bad);
  ASSERT_FALSE(tripped.ok());
  EXPECT_EQ(tripped.firstFailure()->oracle, "incremental-vs-replay");
}
