// Unit tests for the virtual scheduler: strict alternation, strategies,
// blocking/unblocking, deadlock and step-limit detection, determinism,
// and the exhaustive explorer.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "confail/sched/explorer.hpp"
#include "confail/sched/virtual_scheduler.hpp"

namespace sched = confail::sched;
using confail::events::ThreadId;
using sched::BlockKind;
using sched::Outcome;
using sched::RoundRobinStrategy;
using sched::RandomWalkStrategy;
using sched::PrefixReplayStrategy;
using sched::VirtualScheduler;

TEST(VirtualScheduler, RunsSingleThreadToCompletion) {
  RoundRobinStrategy strat;
  VirtualScheduler s(strat);
  int x = 0;
  s.spawn("t0", [&] { x = 42; });
  auto r = s.run();
  EXPECT_EQ(r.outcome, Outcome::Completed);
  EXPECT_EQ(x, 42);
}

TEST(VirtualScheduler, StrictAlternationNoOverlap) {
  // With yields between increments, two threads interleave but never
  // overlap: a non-atomic counter stays exact.
  RoundRobinStrategy strat;
  VirtualScheduler s(strat);
  long counter = 0;  // deliberately not atomic
  auto body = [&] {
    for (int i = 0; i < 1000; ++i) {
      ++counter;
      s.yield();
    }
  };
  s.spawn("a", body);
  s.spawn("b", body);
  auto r = s.run();
  EXPECT_EQ(r.outcome, Outcome::Completed);
  EXPECT_EQ(counter, 2000);
}

TEST(VirtualScheduler, ThreadsSpawnedMidRunExecute) {
  RoundRobinStrategy strat;
  VirtualScheduler s(strat);
  bool childRan = false;
  s.spawn("parent", [&] {
    s.spawn("child", [&] { childRan = true; });
  });
  auto r = s.run();
  EXPECT_EQ(r.outcome, Outcome::Completed);
  EXPECT_TRUE(childRan);
}

TEST(VirtualScheduler, BlockWithoutUnblockIsDeadlock) {
  RoundRobinStrategy strat;
  VirtualScheduler s(strat);
  s.spawn("stuck", [&] { s.block(BlockKind::Custom, 7); });
  auto r = s.run();
  ASSERT_EQ(r.outcome, Outcome::Deadlock);
  ASSERT_EQ(r.blocked.size(), 1u);
  EXPECT_EQ(r.blocked[0].name, "stuck");
  EXPECT_EQ(r.blocked[0].kind, BlockKind::Custom);
  EXPECT_EQ(r.blocked[0].resource, 7u);
}

TEST(VirtualScheduler, UnblockMakesThreadRunnableAgain) {
  RoundRobinStrategy strat;
  VirtualScheduler s(strat);
  bool resumed = false;
  ThreadId sleeper = s.spawn("sleeper", [&] {
    s.block(BlockKind::Custom, 0);
    resumed = true;
  });
  s.spawn("waker", [&] {
    s.yield();  // let the sleeper block first (round-robin order)
    s.unblock(sleeper);
  });
  auto r = s.run();
  EXPECT_EQ(r.outcome, Outcome::Completed);
  EXPECT_TRUE(resumed);
}

TEST(VirtualScheduler, StepLimitAbortsLivelock) {
  RoundRobinStrategy strat;
  VirtualScheduler::Options opts;
  opts.maxSteps = 500;
  VirtualScheduler s(strat, opts);
  s.spawn("spin", [&] {
    for (;;) s.yield();
  });
  auto r = s.run();
  EXPECT_EQ(r.outcome, Outcome::StepLimit);
  EXPECT_EQ(r.steps, 500u);
}

TEST(VirtualScheduler, UncaughtExceptionReported) {
  RoundRobinStrategy strat;
  VirtualScheduler s(strat);
  s.spawn("thrower", [] { throw std::runtime_error("boom"); });
  auto r = s.run();
  ASSERT_EQ(r.outcome, Outcome::Exception);
  EXPECT_EQ(r.errorMessage, "boom");
}

TEST(VirtualScheduler, ScheduleIsReplayable) {
  // Run once with a random strategy; replay the recorded schedule and
  // observe the identical interleaving (same output word).
  auto program = [](VirtualScheduler& s, std::string& word) {
    for (char c : {'a', 'b', 'c'}) {
      s.spawn(std::string(1, c), [&s, &word, c] {
        for (int i = 0; i < 3; ++i) {
          word.push_back(c);
          s.yield();
        }
      });
    }
  };

  std::string word1;
  RandomWalkStrategy rws(1234);
  VirtualScheduler s1(rws);
  program(s1, word1);
  auto r1 = s1.run();
  ASSERT_EQ(r1.outcome, Outcome::Completed);

  std::string word2;
  PrefixReplayStrategy replay(r1.schedule);
  VirtualScheduler s2(replay);
  program(s2, word2);
  auto r2 = s2.run();
  ASSERT_EQ(r2.outcome, Outcome::Completed);
  EXPECT_EQ(word1, word2);
  EXPECT_EQ(r1.schedule, r2.schedule);
}

TEST(VirtualScheduler, RandomWalkIsDeterministicPerSeed) {
  auto runWith = [](std::uint64_t seed) {
    RandomWalkStrategy strat(seed);
    VirtualScheduler s(strat);
    std::string word;
    for (char c : {'x', 'y'}) {
      s.spawn(std::string(1, c), [&s, &word, c] {
        for (int i = 0; i < 5; ++i) {
          word.push_back(c);
          s.yield();
        }
      });
    }
    auto r = s.run();
    EXPECT_EQ(r.outcome, Outcome::Completed);
    return word;
  };
  EXPECT_EQ(runWith(7), runWith(7));
  // Not a hard guarantee, but with 10 interleaved steps two seeds agreeing
  // entirely would be a (2^-something) fluke worth noticing.
  EXPECT_NE(runWith(7), runWith(8));
}

TEST(VirtualScheduler, DestructorCleansUpWithoutRun) {
  RoundRobinStrategy strat;
  {
    VirtualScheduler s(strat);
    s.spawn("never-runs", [] {});
    // destructor must reap the parked worker without hanging
  }
  SUCCEED();
}

TEST(Explorer, CoversAllInterleavingsOfTwoThreads) {
  // Two threads, each one yield point: the schedule tree has a handful of
  // interleavings; the explorer must terminate having covered all of them.
  sched::ExhaustiveExplorer::Options opts;
  opts.maxRuns = 1000;
  sched::ExhaustiveExplorer explorer(opts);
  std::vector<std::string> words;
  auto stats = explorer.explore(
      [](VirtualScheduler& s) {
        auto word = std::make_shared<std::string>();
        for (char c : {'a', 'b'}) {
          s.spawn(std::string(1, c), [&s, word, c] {
            word->push_back(c);
            s.yield();
            word->push_back(c);
          });
        }
      },
      nullptr);
  EXPECT_TRUE(stats.exhausted);
  EXPECT_GT(stats.runs, 1u);
  EXPECT_EQ(stats.deadlocks, 0u);
  EXPECT_EQ(stats.exceptions, 0u);
  EXPECT_EQ(stats.completed, stats.runs);
}

TEST(Explorer, FindsTheOneBadInterleaving) {
  // A seeded atomicity bug: thread B crashes only if it runs entirely
  // between A's two halves.  The explorer must find it.
  sched::ExhaustiveExplorer explorer;
  auto stats = explorer.explore([](VirtualScheduler& s) {
    auto stage = std::make_shared<int>(0);
    s.spawn("A", [&s, stage] {
      *stage = 1;
      s.yield();
      *stage = 0;
    });
    s.spawn("B", [&s, stage] {
      if (*stage == 1) throw std::runtime_error("hit the window");
      s.yield();
    });
  });
  EXPECT_GT(stats.exceptions, 0u);
  EXPECT_FALSE(stats.firstFailure.empty());
}

TEST(Explorer, CallbackCanStopEarly) {
  sched::ExhaustiveExplorer explorer;
  std::uint64_t seen = 0;
  auto stats = explorer.explore(
      [](VirtualScheduler& s) {
        for (char c : {'a', 'b', 'c'}) {
          s.spawn(std::string(1, c), [&s] { s.yield(); });
        }
      },
      [&seen](const std::vector<ThreadId>&, const sched::RunResult&) {
        ++seen;
        return seen < 3;
      });
  EXPECT_TRUE(stats.stoppedByCallback);
  EXPECT_EQ(stats.runs, 3u);
}

TEST(Explorer, DeadlockReachableIsFound) {
  // Classic lock-order inversion built directly on scheduler blocking:
  // two "locks" as booleans; threads block if taken.
  sched::ExhaustiveExplorer explorer;
  auto stats = explorer.explore([](VirtualScheduler& s) {
    struct Locks {
      bool l1 = false, l2 = false;
      ThreadId w1 = confail::events::kNoThread, w2 = confail::events::kNoThread;
    };
    auto locks = std::make_shared<Locks>();
    auto take = [&s, locks](bool Locks::*flag, ThreadId Locks::*waiter) {
      if ((*locks).*flag) {
        (*locks).*waiter = s.currentThread();
        s.block(BlockKind::Custom, 0);
      }
      (*locks).*flag = true;
    };
    auto release = [&s, locks](bool Locks::*flag, ThreadId Locks::*waiter) {
      (*locks).*flag = false;
      if ((*locks).*waiter != confail::events::kNoThread) {
        s.unblock((*locks).*waiter);
        (*locks).*waiter = confail::events::kNoThread;
      }
    };
    s.spawn("ab", [&s, take, release] {
      take(&Locks::l1, &Locks::w1);
      s.yield();
      take(&Locks::l2, &Locks::w2);
      release(&Locks::l2, &Locks::w2);
      release(&Locks::l1, &Locks::w1);
    });
    s.spawn("ba", [&s, take, release] {
      take(&Locks::l2, &Locks::w2);
      s.yield();
      take(&Locks::l1, &Locks::w1);
      release(&Locks::l1, &Locks::w1);
      release(&Locks::l2, &Locks::w2);
    });
  });
  EXPECT_GT(stats.deadlocks, 0u);
}

TEST(Strategy, PrefixReplayDivergenceIsAnError) {
  // Demanding a thread that is not runnable must surface as a run error,
  // not an abort.
  PrefixReplayStrategy strat({99});
  VirtualScheduler s(strat);
  s.spawn("only", [] {});
  auto r = s.run();
  EXPECT_EQ(r.outcome, Outcome::Exception);
  EXPECT_NE(r.errorMessage.find("diverged"), std::string::npos);
}

TEST(Strategy, RoundRobinCyclesFairly) {
  RoundRobinStrategy strat;
  std::vector<ThreadId> runnable = {0, 1, 2};
  std::vector<ThreadId> picks;
  for (int i = 0; i < 6; ++i) picks.push_back(strat.pick(runnable, static_cast<std::uint64_t>(i)));
  EXPECT_EQ(picks, (std::vector<ThreadId>{0, 1, 2, 0, 1, 2}));
}

TEST(Strategy, PctAlwaysPicksFromRunnable) {
  sched::PctStrategy strat(42, 3, 100);
  for (ThreadId t = 0; t < 4; ++t) strat.onSpawn(t);
  std::vector<ThreadId> runnable = {1, 3};
  for (int i = 0; i < 50; ++i) {
    ThreadId p = strat.pick(runnable, static_cast<std::uint64_t>(i));
    EXPECT_TRUE(p == 1 || p == 3);
  }
}

TEST(VirtualScheduler, JoinWaitsForTarget) {
  RoundRobinStrategy strat;
  VirtualScheduler s(strat);
  std::vector<int> order;
  ThreadId worker = s.spawn("worker", [&] {
    for (int i = 0; i < 3; ++i) s.yield();
    order.push_back(1);
  });
  s.spawn("joiner", [&] {
    s.joinThread(worker);
    order.push_back(2);
  });
  auto r = s.run();
  ASSERT_EQ(r.outcome, Outcome::Completed);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(VirtualScheduler, JoinOnFinishedThreadReturnsImmediately) {
  RoundRobinStrategy strat;
  VirtualScheduler s(strat);
  bool joined = false;
  ThreadId quick = s.spawn("quick", [] {});
  s.spawn("joiner", [&] {
    for (int i = 0; i < 5; ++i) s.yield();  // let quick finish first
    s.joinThread(quick);
    joined = true;
  });
  auto r = s.run();
  EXPECT_EQ(r.outcome, Outcome::Completed);
  EXPECT_TRUE(joined);
}

TEST(VirtualScheduler, SelfJoinRejected) {
  RoundRobinStrategy strat;
  VirtualScheduler s(strat);
  bool threw = false;
  s.spawn("narcissist", [&] {
    try {
      s.joinThread(s.currentThread());
    } catch (const confail::UsageError&) {
      threw = true;
    }
  });
  auto r = s.run();
  EXPECT_EQ(r.outcome, Outcome::Completed);
  EXPECT_TRUE(threw);
}

TEST(VirtualScheduler, MutualJoinIsAnObservableDeadlock) {
  RoundRobinStrategy strat;
  VirtualScheduler s(strat);
  // Two threads joining each other: classic deadlock, observable here.
  ThreadId a = s.spawn("a", [&] {
    s.yield();
    s.joinThread(1);
  });
  s.spawn("b", [&] {
    s.yield();
    s.joinThread(a);
  });
  auto r = s.run();
  ASSERT_EQ(r.outcome, Outcome::Deadlock);
  EXPECT_EQ(r.blocked.size(), 2u);
  EXPECT_EQ(r.blocked[0].kind, BlockKind::Join);
}

TEST(Explorer, BranchDepthBoundLimitsTree) {
  // With branching restricted to the first decision, the explorer's run
  // count equals the size of the first runnable set, not the full tree.
  sched::ExhaustiveExplorer::Options opts;
  opts.maxBranchDepth = 1;
  sched::ExhaustiveExplorer explorer(opts);
  auto stats = explorer.explore([](VirtualScheduler& s) {
    for (char c : {'a', 'b', 'c'}) {
      s.spawn(std::string(1, c), [&s] { s.yield(); });
    }
  });
  EXPECT_TRUE(stats.exhausted);
  EXPECT_EQ(stats.runs, 3u);
}
