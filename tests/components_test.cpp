// Tests for the component library: functional correctness of each monitor
// component under deterministic schedules, stress under random schedules,
// and the behaviour of each seeded mutant.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <string>

#include "confail/components/barrier.hpp"
#include "confail/components/bounded_buffer.hpp"
#include "confail/components/latch.hpp"
#include "confail/components/producer_consumer.hpp"
#include "confail/components/readers_writers.hpp"
#include "confail/components/semaphore.hpp"
#include "confail/events/trace.hpp"
#include "confail/monitor/runtime.hpp"
#include "confail/petri/trace_validator.hpp"
#include "confail/sched/explorer.hpp"
#include "confail/sched/virtual_scheduler.hpp"

namespace comps = confail::components;
namespace ev = confail::events;
namespace sched = confail::sched;
using confail::monitor::Runtime;
using sched::Outcome;

namespace {
struct Harness {
  explicit Harness(std::uint64_t seed = 1)
      : strategy(seed), sched(strategy), rt(trace, sched, seed) {}
  ev::Trace trace;
  sched::RandomWalkStrategy strategy;
  sched::VirtualScheduler sched;
  Runtime rt;
};

struct RRHarness {
  ev::Trace trace;
  sched::RoundRobinStrategy strategy;
  sched::VirtualScheduler sched{strategy};
  Runtime rt{trace, sched, 1};
};
}  // namespace

TEST(ProducerConsumerTest, TransfersStringCharByChar) {
  RRHarness h;
  comps::ProducerConsumer pc(h.rt);
  std::string received;
  h.rt.spawn("producer", [&] { pc.send("hello"); });
  h.rt.spawn("consumer", [&] {
    for (int i = 0; i < 5; ++i) received.push_back(pc.receive());
  });
  ASSERT_EQ(h.sched.run().outcome, Outcome::Completed);
  EXPECT_EQ(received, "hello");
  EXPECT_EQ(pc.pendingChars(), 0);
}

TEST(ProducerConsumerTest, SenderBlocksUntilBufferDrained) {
  RRHarness h;
  comps::ProducerConsumer pc(h.rt);
  std::string received;
  h.rt.spawn("producer", [&] {
    pc.send("ab");
    pc.send("cd");  // must wait until both of "ab" are received
  });
  h.rt.spawn("consumer", [&] {
    for (int i = 0; i < 4; ++i) received.push_back(pc.receive());
  });
  ASSERT_EQ(h.sched.run().outcome, Outcome::Completed);
  EXPECT_EQ(received, "abcd");
}

TEST(ProducerConsumerTest, ManyMessagesUnderRandomSchedules) {
  for (std::uint64_t seed : {11ull, 22ull, 33ull, 44ull}) {
    Harness h(seed);
    comps::ProducerConsumer pc(h.rt);
    std::string received;
    h.rt.spawn("producer", [&] {
      for (int m = 0; m < 5; ++m) pc.send("msg" + std::to_string(m));
    });
    h.rt.spawn("consumer", [&] {
      for (int i = 0; i < 20; ++i) received.push_back(pc.receive());
    });
    ASSERT_EQ(h.sched.run().outcome, Outcome::Completed) << "seed " << seed;
    EXPECT_EQ(received, "msg0msg1msg2msg3msg4") << "seed " << seed;
  }
}

TEST(ProducerConsumerTest, TraceConformsToFigure1Model) {
  Harness h(5);
  comps::ProducerConsumer pc(h.rt);
  h.rt.spawn("producer", [&] {
    pc.send("xy");
    pc.send("z");
  });
  h.rt.spawn("consumer", [&] {
    for (int i = 0; i < 3; ++i) pc.receive();
  });
  ASSERT_EQ(h.sched.run().outcome, Outcome::Completed);
  auto v = confail::petri::validateTraceAgainstModel(h.trace, pc.mon().id());
  EXPECT_TRUE(v.ok) << v.message;
}

TEST(ProducerConsumerTest, SkipSyncMutantCorruptsDataSomewhere) {
  // Search random schedules for the FF-T1 interference of the
  // unsynchronized mutant: two racing consumers can both read curPos == 2
  // and retrieve the same character ('a','a'), losing 'b'.
  bool corruptionSeen = false;
  for (std::uint64_t seed = 1; seed <= 200 && !corruptionSeen; ++seed) {
    sched::RandomWalkStrategy strategy(seed);
    sched::VirtualScheduler::Options sopts;
    sopts.maxSteps = 3000;
    sched::VirtualScheduler s(strategy, sopts);
    ev::Trace trace;
    Runtime rt(trace, s, seed);
    comps::ProducerConsumer::Faults f;
    f.skipSync = true;
    comps::ProducerConsumer pc(rt, f);
    auto got = std::make_shared<std::string>();
    rt.spawn("p", [&pc] { pc.send("ab"); });
    for (int c = 0; c < 2; ++c) {
      rt.spawn("c" + std::to_string(c), [&pc, got, &corruptionSeen] {
        got->push_back(pc.receive());
        if (got->size() == 2) {
          std::string sorted = *got;
          std::sort(sorted.begin(), sorted.end());
          if (sorted != "ab") corruptionSeen = true;
        }
      });
    }
    s.run();
  }
  EXPECT_TRUE(corruptionSeen);
}

TEST(BoundedBufferTest, FifoUnderContention) {
  RRHarness h;
  comps::BoundedBuffer<int> buf(h.rt, "buf", 3);
  std::vector<int> got;
  h.rt.spawn("producer", [&] {
    for (int i = 0; i < 10; ++i) buf.put(i);
  });
  h.rt.spawn("consumer", [&] {
    for (int i = 0; i < 10; ++i) got.push_back(buf.take());
  });
  ASSERT_EQ(h.sched.run().outcome, Outcome::Completed);
  std::vector<int> want(10);
  std::iota(want.begin(), want.end(), 0);
  EXPECT_EQ(got, want);
}

TEST(BoundedBufferTest, CapacityNeverExceeded) {
  Harness h(9);
  comps::BoundedBuffer<int> buf(h.rt, "buf", 2);
  int maxSize = 0;
  h.rt.spawn("producer", [&] {
    for (int i = 0; i < 20; ++i) {
      buf.put(i);
      maxSize = std::max(maxSize, buf.sizeNow());
    }
  });
  h.rt.spawn("consumer", [&] {
    for (int i = 0; i < 20; ++i) (void)buf.take();
  });
  ASSERT_EQ(h.sched.run().outcome, Outcome::Completed);
  EXPECT_LE(maxSize, 2);
}

TEST(BoundedBufferTest, MultipleProducersConsumersConserveItems) {
  for (std::uint64_t seed : {3ull, 7ull}) {
    Harness h(seed);
    comps::BoundedBuffer<int> buf(h.rt, "buf", 4);
    long sumOut = 0;
    const int perProducer = 10;
    for (int p = 0; p < 3; ++p) {
      h.rt.spawn("p" + std::to_string(p), [&buf, p] {
        for (int i = 0; i < perProducer; ++i) buf.put(p * 100 + i);
      });
    }
    for (int c = 0; c < 2; ++c) {
      h.rt.spawn("c" + std::to_string(c), [&buf, &sumOut, c] {
        int n = c == 0 ? 15 : 15;
        for (int i = 0; i < n; ++i) sumOut += buf.take();
      });
    }
    ASSERT_EQ(h.sched.run().outcome, Outcome::Completed) << "seed " << seed;
    long sumIn = 0;
    for (int p = 0; p < 3; ++p) {
      for (int i = 0; i < perProducer; ++i) sumIn += p * 100 + i;
    }
    EXPECT_EQ(sumOut, sumIn) << "seed " << seed;
  }
}

TEST(BoundedBufferTest, SkipNotifyOnTakeHangsProducers) {
  RRHarness h;
  comps::BoundedBuffer<int>::Faults f;
  f.skipNotifyOnTake = true;
  comps::BoundedBuffer<int> buf(h.rt, "buf", 1, f);
  h.rt.spawn("producer", [&] {
    buf.put(1);
    buf.put(2);  // blocks (full); take never notifies -> hangs forever
  });
  h.rt.spawn("consumer", [&] {
    // Let the producer block on the full buffer first.
    for (int k = 0; k < 10; ++k) h.rt.schedulePoint();
    (void)buf.take();
    (void)buf.take();
  });
  auto r = h.sched.run();
  EXPECT_EQ(r.outcome, Outcome::Deadlock);
}

TEST(ReadersWritersTest, WriterExcludesReadersAndWriters) {
  RRHarness h;
  comps::ReadersWriters rw(h.rt);
  bool writerIn = false;
  int readersIn = 0;
  bool violation = false;
  for (int i = 0; i < 3; ++i) {
    h.rt.spawn("reader" + std::to_string(i), [&] {
      for (int k = 0; k < 5; ++k) {
        rw.startRead();
        ++readersIn;
        if (writerIn) violation = true;
        h.rt.schedulePoint();
        --readersIn;
        rw.endRead();
      }
    });
  }
  h.rt.spawn("writer", [&] {
    for (int k = 0; k < 5; ++k) {
      rw.startWrite();
      writerIn = true;
      if (readersIn > 0) violation = true;
      h.rt.schedulePoint();
      writerIn = false;
      rw.endWrite();
    }
  });
  ASSERT_EQ(h.sched.run().outcome, Outcome::Completed);
  EXPECT_FALSE(violation);
}

TEST(ReadersWritersTest, ConcurrentReadersOverlap) {
  RRHarness h;
  comps::ReadersWriters rw(h.rt);
  int maxReaders = 0;
  for (int i = 0; i < 3; ++i) {
    h.rt.spawn("reader" + std::to_string(i), [&] {
      rw.startRead();
      maxReaders = std::max(maxReaders, rw.activeReaders());
      for (int k = 0; k < 3; ++k) h.rt.schedulePoint();
      maxReaders = std::max(maxReaders, rw.activeReaders());
      rw.endRead();
    });
  }
  ASSERT_EQ(h.sched.run().outcome, Outcome::Completed);
  EXPECT_GE(maxReaders, 2);
}

TEST(ReadersWritersTest, SkipNotifyMutantHangsQueuedReaders) {
  RRHarness h;
  comps::ReadersWriters::Faults f;
  f.skipNotifyOnEndWrite = true;
  comps::ReadersWriters rw(h.rt, comps::ReadersWriters::Preference::Readers, f);
  h.rt.spawn("writer", [&] {
    rw.startWrite();
    for (int k = 0; k < 4; ++k) h.rt.schedulePoint();
    rw.endWrite();  // forgets to notify
  });
  h.rt.spawn("reader", [&] {
    rw.startRead();
    rw.endRead();
  });
  auto r = h.sched.run();
  EXPECT_EQ(r.outcome, Outcome::Deadlock);
  ASSERT_EQ(r.blocked.size(), 1u);
  EXPECT_EQ(r.blocked[0].kind, sched::BlockKind::CondWait);
}

TEST(SemaphoreTest, PermitsBoundConcurrency) {
  RRHarness h;
  comps::CountingSemaphore sem(h.rt, "sem", 2);
  int inside = 0, maxInside = 0;
  for (int t = 0; t < 5; ++t) {
    h.rt.spawn("t" + std::to_string(t), [&] {
      sem.acquire();
      ++inside;
      maxInside = std::max(maxInside, inside);
      h.rt.schedulePoint();
      --inside;
      sem.release();
    });
  }
  ASSERT_EQ(h.sched.run().outcome, Outcome::Completed);
  EXPECT_LE(maxInside, 2);
  EXPECT_EQ(sem.permits(), 2);
}

TEST(SemaphoreTest, ZeroPermitsBlocksUntilRelease) {
  RRHarness h;
  comps::CountingSemaphore sem(h.rt, "sem", 0);
  bool acquired = false;
  h.rt.spawn("taker", [&] {
    sem.acquire();
    acquired = true;
  });
  h.rt.spawn("giver", [&] {
    for (int k = 0; k < 3; ++k) h.rt.schedulePoint();
    sem.release();
  });
  ASSERT_EQ(h.sched.run().outcome, Outcome::Completed);
  EXPECT_TRUE(acquired);
}

TEST(SemaphoreTest, SkipNotifyMutantHangsAcquirer) {
  RRHarness h;
  comps::CountingSemaphore::Faults f;
  f.skipNotify = true;
  comps::CountingSemaphore sem(h.rt, "sem", 0, f);
  h.rt.spawn("taker", [&] { sem.acquire(); });
  h.rt.spawn("giver", [&] {
    for (int k = 0; k < 3; ++k) h.rt.schedulePoint();
    sem.release();
  });
  EXPECT_EQ(h.sched.run().outcome, Outcome::Deadlock);
}

TEST(SemaphoreTest, NegativePermitsRejected) {
  RRHarness h;
  EXPECT_THROW(comps::CountingSemaphore(h.rt, "bad", -1), confail::UsageError);
}

TEST(BarrierTest, AllPartiesRendezvous) {
  RRHarness h;
  comps::CyclicBarrier bar(h.rt, "bar", 3);
  std::vector<int> generations;
  for (int t = 0; t < 3; ++t) {
    h.rt.spawn("t" + std::to_string(t), [&] {
      generations.push_back(bar.await());
    });
  }
  ASSERT_EQ(h.sched.run().outcome, Outcome::Completed);
  EXPECT_EQ(generations, (std::vector<int>{0, 0, 0}));
}

TEST(BarrierTest, ReusableAcrossGenerations) {
  RRHarness h;
  comps::CyclicBarrier bar(h.rt, "bar", 2);
  std::vector<int> gens;
  for (int t = 0; t < 2; ++t) {
    h.rt.spawn("t" + std::to_string(t), [&] {
      for (int round = 0; round < 3; ++round) gens.push_back(bar.await());
    });
  }
  ASSERT_EQ(h.sched.run().outcome, Outcome::Completed);
  int count0 = 0, count1 = 0, count2 = 0;
  for (int g : gens) {
    count0 += g == 0;
    count1 += g == 1;
    count2 += g == 2;
  }
  EXPECT_EQ(count0, 2);
  EXPECT_EQ(count1, 2);
  EXPECT_EQ(count2, 2);
}

TEST(BarrierTest, NotifyOneMutantStrandsWaiters) {
  RRHarness h;
  comps::CyclicBarrier::Faults f;
  f.notifyOneOnly = true;
  comps::CyclicBarrier bar(h.rt, "bar", 3);
  comps::CyclicBarrier barBad(h.rt, "barBad", 3, f);
  for (int t = 0; t < 3; ++t) {
    h.rt.spawn("t" + std::to_string(t), [&] { barBad.await(); });
  }
  auto r = h.sched.run();
  EXPECT_EQ(r.outcome, Outcome::Deadlock);
  EXPECT_EQ(r.blocked.size(), 1u);  // two waiters; one woken, one stranded
}

TEST(BarrierTest, SinglePartyNeverBlocks) {
  RRHarness h;
  comps::CyclicBarrier bar(h.rt, "bar", 1);
  int gen = -1;
  h.rt.spawn("solo", [&] { gen = bar.await(); });
  ASSERT_EQ(h.sched.run().outcome, Outcome::Completed);
  EXPECT_EQ(gen, 0);
}

TEST(LatchTest, AwaitersReleasedAtZero) {
  RRHarness h;
  comps::CountDownLatch latch(h.rt, "latch", 2);
  int released = 0;
  for (int t = 0; t < 2; ++t) {
    h.rt.spawn("awaiter" + std::to_string(t), [&] {
      latch.await();
      ++released;
    });
  }
  h.rt.spawn("counter", [&] {
    for (int k = 0; k < 3; ++k) h.rt.schedulePoint();
    latch.countDown();
    latch.countDown();
  });
  ASSERT_EQ(h.sched.run().outcome, Outcome::Completed);
  EXPECT_EQ(released, 2);
  EXPECT_EQ(latch.count(), 0);
}

TEST(LatchTest, AwaitAfterZeroReturnsImmediately) {
  RRHarness h;
  comps::CountDownLatch latch(h.rt, "latch", 0);
  bool done = false;
  h.rt.spawn("t", [&] {
    latch.await();
    done = true;
  });
  ASSERT_EQ(h.sched.run().outcome, Outcome::Completed);
  EXPECT_TRUE(done);
}

TEST(LatchTest, ExtraCountDownIsNoOp) {
  RRHarness h;
  comps::CountDownLatch latch(h.rt, "latch", 1);
  h.rt.spawn("t", [&] {
    latch.countDown();
    latch.countDown();  // below zero: ignored
  });
  ASSERT_EQ(h.sched.run().outcome, Outcome::Completed);
  EXPECT_EQ(latch.count(), 0);
}

TEST(LatchTest, SkipNotifyMutantHangsAwaiter) {
  RRHarness h;
  comps::CountDownLatch::Faults f;
  f.skipNotify = true;
  comps::CountDownLatch latch(h.rt, "latch", 1, f);
  h.rt.spawn("awaiter", [&] { latch.await(); });
  h.rt.spawn("counter", [&] {
    for (int k = 0; k < 3; ++k) h.rt.schedulePoint();
    latch.countDown();
  });
  EXPECT_EQ(h.sched.run().outcome, Outcome::Deadlock);
}

// ---------------------------------------------------------------------------
// ThreadPool: task execution, blocking submit, shutdown, failed tasks.
// ---------------------------------------------------------------------------

#include "confail/components/thread_pool.hpp"
#include "confail/detect/lockset.hpp"

TEST(ThreadPoolTest, ExecutesEverySubmittedTask) {
  RRHarness h;
  auto pool = std::make_shared<comps::ThreadPool>(h.rt, "pool", 3, 4);
  int sum = 0;
  h.rt.spawn("client", [&, pool] {
    for (int i = 1; i <= 10; ++i) {
      pool->submit([&sum, i] { sum += i; });
    }
    pool->shutdown();
  });
  ASSERT_EQ(h.sched.run().outcome, Outcome::Completed);
  EXPECT_EQ(sum, 55);
  EXPECT_EQ(pool->completedTasks(), 10);
  EXPECT_EQ(pool->failedTasks(), 0);
}

TEST(ThreadPoolTest, SubmitBlocksWhenQueueFull) {
  RRHarness h;
  auto pool = std::make_shared<comps::ThreadPool>(h.rt, "pool", 1, 2);
  int done = 0;
  h.rt.spawn("client", [&, pool] {
    for (int i = 0; i < 8; ++i) {
      pool->submit([&done, &h] {
        h.rt.schedulePoint();
        ++done;
      });
    }
    pool->shutdown();
  });
  ASSERT_EQ(h.sched.run().outcome, Outcome::Completed);
  EXPECT_EQ(done, 8);
}

TEST(ThreadPoolTest, ThrowingTasksAreCountedNotFatal) {
  RRHarness h;
  auto pool = std::make_shared<comps::ThreadPool>(h.rt, "pool", 2, 3);
  h.rt.spawn("client", [&, pool] {
    pool->submit([] { throw std::runtime_error("bad task"); });
    pool->submit([] {});
    pool->submit([] { throw std::runtime_error("worse task"); });
    pool->shutdown();
  });
  ASSERT_EQ(h.sched.run().outcome, Outcome::Completed);
  EXPECT_EQ(pool->completedTasks(), 1);
  EXPECT_EQ(pool->failedTasks(), 2);
}

TEST(ThreadPoolTest, EmptyTaskRejected) {
  RRHarness h;
  auto pool = std::make_shared<comps::ThreadPool>(h.rt, "pool", 1, 2);
  h.rt.spawn("client", [&, pool] {
    EXPECT_THROW(pool->submit(comps::ThreadPool::Task{}), confail::UsageError);
    pool->shutdown();
  });
  ASSERT_EQ(h.sched.run().outcome, Outcome::Completed);
}

TEST(ThreadPoolTest, RandomSchedulesConserveTasks) {
  for (std::uint64_t seed : {61ull, 62ull, 63ull}) {
    Harness h(seed);
    auto pool = std::make_shared<comps::ThreadPool>(h.rt, "pool", 2, 2);
    int executed = 0;
    h.rt.spawn("clientA", [&, pool] {
      for (int i = 0; i < 6; ++i) pool->submit([&executed] { ++executed; });
    });
    h.rt.spawn("clientB", [&, pool] {
      for (int i = 0; i < 6; ++i) pool->submit([&executed] { ++executed; });
    });
    h.rt.spawn("closer", [&, pool] {
      // Let both clients finish submitting first (join, then shut down).
      h.rt.join(h.sched.threadCount() >= 2 ? 2 : 0);
      h.rt.join(3);
      pool->shutdown();
    });
    ASSERT_EQ(h.sched.run().outcome, Outcome::Completed) << "seed " << seed;
    EXPECT_EQ(executed, 12) << "seed " << seed;
    EXPECT_EQ(pool->completedTasks(), 12);
  }
}

TEST(ThreadPoolTest, NoDetectorFindingsOnCleanRun) {
  RRHarness h;
  auto pool = std::make_shared<comps::ThreadPool>(h.rt, "pool", 2, 2);
  h.rt.spawn("client", [&, pool] {
    for (int i = 0; i < 5; ++i) pool->submit([] {});
    pool->shutdown();
  });
  ASSERT_EQ(h.sched.run().outcome, Outcome::Completed);
  confail::detect::LocksetDetector lockset;
  auto findings = lockset.analyze(h.trace);
  EXPECT_TRUE(findings.empty());
  auto v = confail::petri::validateTraceAgainstModel(h.trace, 0);
  EXPECT_TRUE(v.ok) << v.message;
}
