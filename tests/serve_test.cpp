// Campaign service tests: the JobSpec grid contract, the spool store, and
// the daemon's resume guarantee — a SIGKILLed server restarted over the
// same root re-runs only the missing shards and produces byte-identical
// merged reports.
#include <gtest/gtest.h>

#include <csignal>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <sys/wait.h>
#include <unistd.h>

#include "confail/inject/job_spec.hpp"
#include "confail/serve/client.hpp"
#include "confail/serve/merge.hpp"
#include "confail/serve/server.hpp"
#include "confail/serve/store.hpp"

namespace fs = std::filesystem;
namespace inject = confail::inject;
namespace serve = confail::serve;
namespace taxonomy = confail::taxonomy;
using Reduction = confail::sched::ExhaustiveExplorer::Reduction;

namespace {

// A scratch spool root, removed on destruction.
struct TempRoot {
  fs::path path;
  TempRoot() {
    path = fs::temp_directory_path() /
           ("confail-serve-test-" + std::to_string(::getpid()) + "-" +
            std::to_string(counter()++));
    fs::create_directories(path);
  }
  ~TempRoot() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  std::string str() const { return path.string(); }
  static int& counter() {
    static int n = 0;
    return n;
  }
};

inject::JobSpec smallSpec() {
  inject::JobSpec spec;
  spec.name = "t";
  spec.scenarios = {"lock_order"};
  spec.classes = {taxonomy::FailureClass::FF_T2};
  spec.maxRuns = 60;
  spec.maxSteps = 400;
  return spec;
}

std::string slurp(const std::string& path) {
  std::string out;
  EXPECT_TRUE(serve::CampaignStore::readFile(path, out)) << path;
  return out;
}

std::size_t journalLines(const std::string& path) {
  std::ifstream in(path);
  std::string line;
  std::size_t n = 0;
  while (std::getline(in, line)) {
    if (!line.empty()) ++n;
  }
  return n;
}

}  // namespace

// ---- JobSpec ---------------------------------------------------------------

TEST(JobSpec, RoundTripIsByteIdentical) {
  inject::JobSpec spec;
  spec.name = "nightly.full-1";
  spec.scenarios = {"fig2", "lock_order"};
  spec.classes = {taxonomy::FailureClass::FF_T5,
                  taxonomy::FailureClass::FF_T2};
  spec.reductions = {Reduction::None, Reduction::Dpor};
  spec.maxRuns = 123;
  spec.maxSteps = 456;
  spec.maxBranchDepth = 7;
  spec.workers = 3;
  spec.negativeControls = false;

  const std::string doc = spec.toJson();
  inject::JobSpec back;
  std::string error;
  ASSERT_TRUE(inject::JobSpec::parse(doc, back, error)) << error;
  EXPECT_EQ(back.toJson(), doc);
  EXPECT_EQ(back.name, spec.name);
  EXPECT_EQ(back.scenarios, spec.scenarios);
  EXPECT_EQ(back.classes, spec.classes);
  EXPECT_EQ(back.reductions, spec.reductions);
  EXPECT_EQ(back.maxRuns, 123u);
  EXPECT_EQ(back.maxSteps, 456u);
  EXPECT_EQ(back.maxBranchDepth, 7u);
  EXPECT_EQ(back.workers, 3u);
  EXPECT_FALSE(back.negativeControls);

  // Content-derived ids: equal specs hash to equal ids.
  EXPECT_EQ(serve::CampaignStore::jobIdFor(spec),
            serve::CampaignStore::jobIdFor(back));
}

TEST(JobSpec, ParseRejectsMalformedDocuments) {
  inject::JobSpec out;
  std::string error;
  EXPECT_FALSE(inject::JobSpec::parse("not json at all", out, error));
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(inject::JobSpec::parse("{\"schema\": \"wrong.v1\"}", out,
                                      error));
  EXPECT_NE(error.find("schema"), std::string::npos) << error;
  EXPECT_FALSE(inject::JobSpec::parse(
      "{\"schema\": \"confail.job.v1\", \"classes\": [\"FF-T99\"]}", out,
      error));
  EXPECT_FALSE(inject::JobSpec::parse(
      "{\"schema\": \"confail.job.v1\", \"reductions\": [\"fancy\"]}", out,
      error));
  EXPECT_FALSE(inject::JobSpec::parse(
      "{\"schema\": \"confail.job.v1\", \"max_runs\": \"many\"}", out,
      error));
}

TEST(JobSpec, ValidateCatchesSemanticErrors) {
  inject::JobSpec spec = smallSpec();
  EXPECT_EQ(spec.validate(), "");

  inject::JobSpec badName = smallSpec();
  badName.name = "has space";
  EXPECT_NE(badName.validate(), "");

  inject::JobSpec badScenario = smallSpec();
  badScenario.scenarios = {"no_such_scenario"};
  EXPECT_NE(badScenario.validate(), "");

  inject::JobSpec badClass = smallSpec();
  badClass.classes = {taxonomy::FailureClass::EF_T1};  // not injectable
  EXPECT_NE(badClass.validate(), "");

  inject::JobSpec badBudget = smallSpec();
  badBudget.maxRuns = 0;
  EXPECT_NE(badBudget.validate(), "");

  inject::JobSpec badReductions = smallSpec();
  badReductions.reductions.clear();
  EXPECT_NE(badReductions.validate(), "");
}

TEST(JobSpec, ExpandShardsIsDeterministicAndOrdered) {
  inject::JobSpec spec;
  spec.name = "grid";
  spec.scenarios = {"fig2", "lock_order"};
  spec.reductions = {Reduction::None, Reduction::Sleep};
  spec.maxRuns = 50;

  const std::vector<inject::ShardSpec> shards = inject::expandShards(spec);
  ASSERT_FALSE(shards.empty());
  // Indices are positional, injection shards precede controls, and the
  // expansion is stable across calls.
  bool seenControl = false;
  for (std::size_t i = 0; i < shards.size(); ++i) {
    EXPECT_EQ(shards[i].index, i);
    if (shards[i].control) seenControl = true;
    if (seenControl) {
      EXPECT_TRUE(shards[i].control) << shards[i].describe();
    }
  }
  EXPECT_TRUE(seenControl);
  // Controls only for clean scenarios: lock_order is fault-seeded, so the
  // grid carries fig2 x 2 reductions of negative controls.
  std::size_t controls = 0;
  for (const inject::ShardSpec& s : shards) controls += s.control ? 1 : 0;
  EXPECT_EQ(controls, 2u);

  const std::vector<inject::ShardSpec> again = inject::expandShards(spec);
  ASSERT_EQ(again.size(), shards.size());
  for (std::size_t i = 0; i < shards.size(); ++i) {
    EXPECT_EQ(again[i].describe(), shards[i].describe());
  }

  inject::JobSpec invalid = spec;
  invalid.scenarios = {"bogus"};
  EXPECT_THROW(inject::expandShards(invalid), confail::UsageError);
}

// ---- store -----------------------------------------------------------------

TEST(CampaignStore, SubmitAdoptShardRoundTrip) {
  TempRoot root;
  serve::CampaignStore store(root.str());
  ASSERT_TRUE(store.init());

  const inject::JobSpec spec = smallSpec();
  const std::string id = store.submit(spec);
  ASSERT_FALSE(id.empty());
  EXPECT_EQ(store.submit(spec), id);  // idempotent
  EXPECT_EQ(store.scanQueue(), std::vector<std::string>{id});

  inject::JobSpec adopted;
  std::string error;
  ASSERT_TRUE(store.adoptJob(id, adopted, error)) << error;
  EXPECT_EQ(adopted.toJson(), spec.toJson());
  EXPECT_TRUE(store.scanQueue().empty());
  EXPECT_EQ(store.listJobs(), std::vector<std::string>{id});

  // Run one shard and round-trip it through the on-disk form.
  const std::vector<inject::ShardSpec> shards = inject::expandShards(spec);
  ASSERT_FALSE(shards.empty());
  inject::RunShardOptions ro;
  ro.captureEvents = true;
  const inject::ShardResult r = inject::runShard(spec, shards[0], ro);
  ASSERT_TRUE(store.writeShard(id, r));

  inject::ShardResult back;
  ASSERT_TRUE(store.readShard(id, 0, back));
  EXPECT_EQ(back.spec.describe(), r.spec.describe());
  EXPECT_EQ(back.cell.runs, r.cell.runs);
  EXPECT_EQ(back.findings.size(), r.findings.size());
  EXPECT_EQ(back.eventsJsonl, r.eventsJsonl);
  EXPECT_EQ(serve::CampaignStore::shardToJson(back),
            serve::CampaignStore::shardToJson(r));

  const std::vector<bool> done = store.completedShards(id, shards.size());
  EXPECT_TRUE(done[0]);
  for (std::size_t i = 1; i < done.size(); ++i) EXPECT_FALSE(done[i]);
}

// ---- daemon ----------------------------------------------------------------

TEST(Server, RunsSubmittedJobToCompletion) {
  TempRoot root;
  const inject::JobSpec spec = smallSpec();
  const std::string id = serve::submitJob(root.str(), spec);
  ASSERT_FALSE(id.empty());

  serve::ServerOptions opts;
  opts.root = root.str();
  opts.poolSize = 2;
  opts.subprocess = false;  // in-process pool: sanitizer-safe
  opts.exitWhenIdle = true;
  serve::Server server(std::move(opts));
  EXPECT_EQ(server.run(), 0);

  serve::JobState st;
  ASSERT_TRUE(serve::jobStatus(root.str(), id, st));
  EXPECT_EQ(st.status, "completed");
  EXPECT_GT(st.shardsTotal, 0u);
  EXPECT_EQ(st.shardsDone, st.shardsTotal);
  EXPECT_EQ(st.shardsFailed, 0u);

  serve::JobResults results;
  ASSERT_TRUE(serve::jobResults(root.str(), id, results));
  ASSERT_TRUE(results.complete);
  EXPECT_NE(results.findingsJson.find("confail.findings.v1"),
            std::string::npos);
  EXPECT_NE(results.sarif.find("2.1.0"), std::string::npos);
  EXPECT_NE(results.matrixJson.find("confail.injection.v1"),
            std::string::npos);

  // The heartbeat feed carries every shard's captured run.
  const serve::CampaignStore& store = server.store();
  EXPECT_GT(fs::file_size(store.eventsPath(id)), 0u);
  EXPECT_EQ(journalLines(store.journalPath(id)), st.shardsTotal);
}

TEST(Server, CrashResumeRerunsOnlyMissingShards) {
#if defined(__SANITIZE_THREAD__)
  GTEST_SKIP() << "fork-based crash test is unsafe under TSan";
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
  GTEST_SKIP() << "fork-based crash test is unsafe under TSan";
#endif
#endif
  TempRoot root;
  inject::JobSpec spec = smallSpec();
  spec.scenarios = {"fig2", "lock_order"};  // enough shards to die mid-job
  const std::string id = serve::submitJob(root.str(), spec);
  ASSERT_FALSE(id.empty());
  const std::size_t total = inject::expandShards(spec).size();
  ASSERT_GT(total, 2u);

  const serve::CampaignStore store(root.str());

  // First daemon: forked child, serial in-process pool (SIGKILL takes all
  // its work down with it — no orphan workers racing the restarted daemon).
  const pid_t child = ::fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    serve::ServerOptions opts;
    opts.root = root.str();
    opts.poolSize = 1;
    opts.subprocess = false;
    opts.exitWhenIdle = true;
    opts.pollMs = 1;
    serve::Server server(std::move(opts));
    ::_exit(server.run());
  }

  // Kill the daemon once it has landed some but not all shards.  If it
  // finishes first the kill degrades to reaping a finished child and the
  // "resume" below trivially re-runs nothing — still a valid pass, but the
  // budgets are sized so that never happens in practice.
  std::size_t landed = 0;
  for (int spin = 0; spin < 20000; ++spin) {
    const std::vector<bool> done = store.completedShards(id, total);
    landed = 0;
    for (const bool d : done) landed += d ? 1 : 0;
    if (landed >= 1) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  ::kill(child, SIGKILL);
  int wstatus = 0;
  ASSERT_EQ(::waitpid(child, &wstatus, 0), child);
  ASSERT_GE(landed, 1u);

  const std::vector<bool> doneBeforeResume = store.completedShards(id, total);
  std::size_t landedAtKill = 0;
  for (const bool d : doneBeforeResume) landedAtKill += d ? 1 : 0;
  ASSERT_LT(landedAtKill, total) << "daemon finished before the kill";
  const std::size_t journalBefore = journalLines(store.journalPath(id));

  // Second daemon over the same root: must finish the job.
  serve::ServerOptions opts;
  opts.root = root.str();
  opts.poolSize = 2;
  opts.subprocess = false;
  opts.exitWhenIdle = true;
  serve::Server server(std::move(opts));
  EXPECT_EQ(server.run(), 0);

  serve::JobState st;
  ASSERT_TRUE(serve::jobStatus(root.str(), id, st));
  EXPECT_EQ(st.status, "completed");
  EXPECT_EQ(st.shardsDone, total);

  // Zero re-runs: the journal is append-only, completed shards are never
  // re-journaled, so both daemons together journal each shard exactly once.
  EXPECT_EQ(journalLines(store.journalPath(id)), total);
  EXPECT_EQ(journalLines(store.journalPath(id)) - journalBefore,
            total - landedAtKill);

  // Byte-identical reports: an uninterrupted run of the same spec in a
  // fresh root merges to the same findings and SARIF documents.
  TempRoot cleanRoot;
  ASSERT_EQ(serve::submitJob(cleanRoot.str(), spec), id);
  serve::ServerOptions cleanOpts;
  cleanOpts.root = cleanRoot.str();
  cleanOpts.poolSize = 1;
  cleanOpts.subprocess = false;
  cleanOpts.exitWhenIdle = true;
  serve::Server cleanServer(std::move(cleanOpts));
  EXPECT_EQ(cleanServer.run(), 0);

  const serve::CampaignStore cleanStore(cleanRoot.str());
  EXPECT_EQ(slurp(store.findingsPath(id)),
            slurp(cleanStore.findingsPath(id)));
  EXPECT_EQ(slurp(store.sarifPath(id)), slurp(cleanStore.sarifPath(id)));
}

TEST(Server, MalformedSubmissionIsDroppedNotLooped) {
  TempRoot root;
  serve::CampaignStore store(root.str());
  ASSERT_TRUE(store.init());
  ASSERT_TRUE(serve::CampaignStore::writeFileAtomic(
      (root.path / "queue" / "broken.json").string(), "{ not json"));

  serve::ServerOptions opts;
  opts.root = root.str();
  opts.subprocess = false;
  opts.exitWhenIdle = true;
  serve::Server server(std::move(opts));
  EXPECT_EQ(server.run(), 1);  // the dropped job counts as failed

  EXPECT_TRUE(store.scanQueue().empty());
  serve::JobState st;
  ASSERT_TRUE(store.readState("broken", st));
  EXPECT_EQ(st.status, "failed");
}

TEST(Server, DrainRequestStopsTheLoop) {
  TempRoot root;
  serve::CampaignStore store(root.str());
  ASSERT_TRUE(store.init());
  ASSERT_TRUE(store.requestDrain());
  EXPECT_TRUE(store.drainRequested());

  serve::ServerOptions opts;
  opts.root = root.str();
  opts.subprocess = false;
  serve::Server server(std::move(opts));  // no exitWhenIdle: drain ends it
  EXPECT_EQ(server.run(), 0);
  EXPECT_FALSE(store.drainRequested());  // consumed on exit
}

// ---- merge -----------------------------------------------------------------

TEST(Merge, DedupsByFingerprintAcrossShards) {
  const inject::JobSpec spec = smallSpec();
  const std::vector<inject::ShardSpec> shards = inject::expandShards(spec);
  std::vector<inject::ShardResult> results;
  for (const inject::ShardSpec& s : shards) {
    results.push_back(inject::runShard(spec, s));
  }
  const serve::MergedReports once = serve::mergeShards(spec, "job", results);

  // Feeding every shard twice must not change the merged findings: the
  // duplicates are dropped by fingerprint.
  std::vector<inject::ShardResult> doubled = results;
  for (const inject::ShardResult& r : results) doubled.push_back(r);
  const serve::MergedReports twice =
      serve::mergeShards(spec, "job", doubled);
  EXPECT_EQ(twice.findingsJson, once.findingsJson);
  EXPECT_EQ(twice.sarif, once.sarif);
  EXPECT_EQ(twice.uniqueFindings, once.uniqueFindings);
  EXPECT_GT(twice.duplicates, once.duplicates);
}
