// Property tests (parameterized sweeps) for the monitor substrate.
//
// Swept dimensions: grant policy x wake policy x schedule seed x thread
// count.  For every combination the same invariants must hold:
//   * mutual exclusion (never two threads inside a critical section),
//   * trace balance (per thread and monitor: requests == acquires ==
//     releases + waits, every wait is followed by at most one wake),
//   * model conformance (the trace is a legal Figure-1 firing sequence),
//   * completion (the workload is deadlock-free by construction).
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <tuple>

#include "confail/events/trace.hpp"
#include "confail/monitor/monitor.hpp"
#include "confail/monitor/runtime.hpp"
#include "confail/monitor/shared_var.hpp"
#include "confail/petri/trace_validator.hpp"
#include "confail/sched/virtual_scheduler.hpp"

namespace ev = confail::events;
namespace sched = confail::sched;
using confail::monitor::Monitor;
using confail::monitor::Runtime;
using confail::monitor::SelectPolicy;
using confail::monitor::Synchronized;

namespace {

struct SweepParam {
  SelectPolicy grant;
  SelectPolicy wake;
  std::uint64_t seed;
  int threads;
};

std::string paramName(const testing::TestParamInfo<SweepParam>& info) {
  const SweepParam& p = info.param;
  return std::string(confail::monitor::selectPolicyName(p.grant)) + "grant_" +
         confail::monitor::selectPolicyName(p.wake) + "wake_seed" +
         std::to_string(p.seed) + "_t" + std::to_string(p.threads);
}

class MonitorSweep : public testing::TestWithParam<SweepParam> {};

// Shared workload: threads alternate between plain critical sections and a
// wait/notify token-passing phase, with preemption invited everywhere.
struct WorkloadResult {
  sched::RunResult run;
  int maxInside = 0;
  int finalCounter = 0;
};

WorkloadResult runWorkload(const SweepParam& p, ev::Trace& trace) {
  sched::RandomWalkStrategy strategy(p.seed);
  sched::VirtualScheduler s(strategy);
  Runtime rt(trace, s, p.seed);
  Monitor::Options mo;
  mo.grantPolicy = p.grant;
  mo.wakePolicy = p.wake;
  Monitor m(rt, "swept", mo);

  WorkloadResult result;
  int inside = 0;
  int counter = 0;
  int arrivals = 0;

  for (int t = 0; t < p.threads; ++t) {
    rt.spawn("t" + std::to_string(t), [&, t] {
      // Phase 1: contended critical sections.
      for (int i = 0; i < 10; ++i) {
        Synchronized sync(m);
        ++inside;
        result.maxInside = std::max(result.maxInside, inside);
        rt.schedulePoint();
        ++counter;
        --inside;
      }
      // Phase 2: a barrier rendezvous hand-rolled on the monitor —
      // deadlock-free regardless of wake policy because the opener uses
      // notifyAll and waiters re-check the guard.
      {
        Synchronized sync(m);
        ++arrivals;
        if (arrivals == p.threads) {
          m.notifyAll();
        } else {
          while (arrivals < p.threads) m.wait();
        }
      }
      (void)t;
    });
  }
  result.run = s.run();
  result.finalCounter = counter;
  return result;
}

}  // namespace

TEST_P(MonitorSweep, MutualExclusionAndCompletion) {
  ev::Trace trace;
  WorkloadResult r = runWorkload(GetParam(), trace);
  EXPECT_EQ(r.run.outcome, sched::Outcome::Completed);
  EXPECT_EQ(r.maxInside, 1) << "mutual exclusion violated";
  EXPECT_EQ(r.finalCounter, GetParam().threads * 10);
}

TEST_P(MonitorSweep, TraceIsBalancedAndModelConformant) {
  ev::Trace trace;
  WorkloadResult r = runWorkload(GetParam(), trace);
  ASSERT_EQ(r.run.outcome, sched::Outcome::Completed);

  // Balance accounting per thread.
  std::map<ev::ThreadId, int> requests, acquires, releases, waits, wakes;
  for (const ev::Event& e : trace.events()) {
    switch (e.kind) {
      case ev::EventKind::LockRequest: ++requests[e.thread]; break;
      case ev::EventKind::LockAcquire: ++acquires[e.thread]; break;
      case ev::EventKind::LockRelease: ++releases[e.thread]; break;
      case ev::EventKind::WaitBegin: ++waits[e.thread]; break;
      case ev::EventKind::Notified:
      case ev::EventKind::SpuriousWake: ++wakes[e.thread]; break;
      default: break;
    }
  }
  for (const auto& [tid, acq] : acquires) {
    // Every acquisition is eventually released or converted into a wait,
    // and the run completed, so the books must balance exactly.
    EXPECT_EQ(acq, releases[tid] + waits[tid]) << "thread " << tid;
    // Each wake corresponds to exactly one wait (completed run).
    EXPECT_EQ(waits[tid], wakes[tid]) << "thread " << tid;
    // T1 fires once per non-reentrant entry; a woken wait re-acquires via
    // handoff without a new request: requests == acquires - wakes.
    EXPECT_EQ(requests[tid], acq - wakes[tid]) << "thread " << tid;
  }

  // The full trace replays through the Figure 1 net.
  auto v = confail::petri::validateTraceAgainstModel(trace, 0);
  EXPECT_TRUE(v.ok) << v.message;
  EXPECT_GT(v.eventsChecked, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    PolicySeedThreadSweep, MonitorSweep,
    testing::ValuesIn([] {
      std::vector<SweepParam> params;
      for (SelectPolicy grant : {SelectPolicy::Fifo, SelectPolicy::Lifo,
                                 SelectPolicy::Random}) {
        for (SelectPolicy wake : {SelectPolicy::Fifo, SelectPolicy::Random}) {
          for (std::uint64_t seed : {1ull, 17ull, 99ull}) {
            for (int threads : {2, 4}) {
              params.push_back(SweepParam{grant, wake, seed, threads});
            }
          }
        }
      }
      return params;
    }()),
    paramName);

// ---------------------------------------------------------------------------
// Spurious-wakeup sweep: with guarded waits, ANY spurious-wake probability
// must be harmless; the trace may contain SpuriousWake events but the
// workload still completes with the correct result.
// ---------------------------------------------------------------------------

class SpuriousSweep : public testing::TestWithParam<std::tuple<double, std::uint64_t>> {};

namespace {
std::string spuriousName(
    const testing::TestParamInfo<std::tuple<double, std::uint64_t>>& info) {
  return "p" + std::to_string(static_cast<int>(std::get<0>(info.param) * 100)) +
         "_seed" + std::to_string(std::get<1>(info.param));
}
std::string depthName(const testing::TestParamInfo<int>& info) {
  return "depth" + std::to_string(info.param);
}
}  // namespace


TEST_P(SpuriousSweep, GuardedWaitsAbsorbSpuriousWakes) {
  const auto [prob, seed] = GetParam();
  ev::Trace trace;
  sched::RandomWalkStrategy strategy(seed);
  sched::VirtualScheduler s(strategy);
  Runtime rt(trace, s, seed);
  Monitor::Options mo;
  mo.spuriousWakeProbability = prob;
  Monitor m(rt, "spurious", mo);

  int token = 0;
  const int rounds = 6;
  for (int t = 0; t < 2; ++t) {
    rt.spawn("t" + std::to_string(t), [&, t] {
      for (int i = 0; i < rounds; ++i) {
        Synchronized sync(m);
        while (token % 2 != t) m.wait();
        ++token;
        m.notifyAll();
      }
    });
  }
  auto r = s.run();
  EXPECT_EQ(r.outcome, sched::Outcome::Completed);
  EXPECT_EQ(token, 2 * rounds);
  // The trace must still be a legal firing sequence (SpuriousWake == T5).
  auto v = confail::petri::validateTraceAgainstModel(trace, 0);
  EXPECT_TRUE(v.ok) << v.message;
}

INSTANTIATE_TEST_SUITE_P(
    ProbabilitySweep, SpuriousSweep,
    testing::Combine(testing::Values(0.0, 0.1, 0.5, 0.9),
                     testing::Values(2ull, 3ull, 5ull)),
    spuriousName);

// ---------------------------------------------------------------------------
// Reentrancy depth sweep: wait() must restore any depth exactly.
// ---------------------------------------------------------------------------

class DepthSweep : public testing::TestWithParam<int> {};

TEST_P(DepthSweep, WaitRestoresArbitraryDepth) {
  const int depth = GetParam();
  ev::Trace trace;
  sched::RoundRobinStrategy strategy;
  sched::VirtualScheduler s(strategy);
  Runtime rt(trace, s, 1);
  Monitor m(rt, "deep");
  bool flag = false;
  rt.spawn("waiter", [&] {
    for (int i = 0; i < depth; ++i) m.lock();
    EXPECT_EQ(m.depth(), static_cast<std::uint32_t>(depth));
    while (!flag) m.wait();
    EXPECT_EQ(m.depth(), static_cast<std::uint32_t>(depth));
    for (int i = 0; i < depth; ++i) m.unlock();
    EXPECT_FALSE(m.heldByCurrent());
  });
  rt.spawn("setter", [&] {
    Synchronized sync(m);  // must be grantable: wait released all levels
    flag = true;
    m.notifyAll();
  });
  EXPECT_EQ(s.run().outcome, sched::Outcome::Completed);
}

INSTANTIATE_TEST_SUITE_P(Depths, DepthSweep, testing::Values(1, 2, 3, 5, 8),
                         depthName);
