// Second wave of ConAn driver tests: trace bracketing via ClockAwait,
// expectWait propagation, report rendering, window semantics at the
// boundaries, and mixed pass/fail aggregation.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "confail/clock/abstract_clock.hpp"
#include "confail/components/producer_consumer.hpp"
#include "confail/conan/test_driver.hpp"
#include "confail/events/trace.hpp"
#include "confail/monitor/runtime.hpp"
#include "confail/sched/virtual_scheduler.hpp"

namespace ev = confail::events;
namespace sched = confail::sched;
using confail::clock::AbstractClock;
using confail::components::ProducerConsumer;
using confail::conan::Call;
using confail::conan::TestDriver;
using confail::monitor::Runtime;

namespace {
struct Harness {
  ev::Trace trace;
  sched::RoundRobinStrategy strategy;
  sched::VirtualScheduler sched{strategy};
  Runtime rt{trace, sched, 1};
  AbstractClock clk{rt};
  TestDriver driver{rt, clk};
};
}  // namespace

TEST(ConanExtra, EveryCallEmitsItsBracketingClockAwait) {
  Harness h;
  h.driver.addVoid("a", 1, "one", [] {});
  h.driver.addVoid("a", 3, "two", [] {});
  h.driver.addVoid("b", 2, "three", [] {});
  auto res = h.driver.execute();
  ASSERT_EQ(res.run.outcome, sched::Outcome::Completed);
  // Three awaits with the scripted target ticks, regardless of whether the
  // await had to block (tick 3 after tick 1 on thread "a" blocks; the
  // others may be immediate) — the classifier depends on this bracketing.
  std::vector<std::uint64_t> targets;
  for (const auto& e : h.trace.events()) {
    if (e.kind == ev::EventKind::ClockAwait) targets.push_back(e.aux);
  }
  std::sort(targets.begin(), targets.end());
  EXPECT_EQ(targets, (std::vector<std::uint64_t>{1, 2, 3}));
}

TEST(ConanExtra, ExpectWaitIsCopiedIntoReports) {
  Harness h;
  Call c;
  c.thread = "t";
  c.startTick = 1;
  c.label = "x";
  c.action = [] { return std::int64_t{0}; };
  c.expectWait = true;
  h.driver.add(c);
  h.driver.addVoid("t", 2, "y", [] {});
  auto res = h.driver.execute();
  ASSERT_EQ(res.reports.size(), 2u);
  ASSERT_TRUE(res.reports[0].expectWait.has_value());
  EXPECT_TRUE(*res.reports[0].expectWait);
  EXPECT_FALSE(res.reports[1].expectWait.has_value());
}

TEST(ConanExtra, WindowBoundariesAreInclusive) {
  Harness h;
  h.driver.addVoid("t", 2, "exact", [] {}, {{2, 2}});
  h.driver.addVoid("t", 3, "lo-edge", [] {}, {{3, 5}});
  h.driver.addVoid("t", 7, "hi-edge", [] {}, {{5, 7}});
  auto res = h.driver.execute();
  EXPECT_TRUE(res.allPassed()) << res.describe();
}

TEST(ConanExtra, DescribeRendersPassAndFailLines) {
  Harness h;
  ProducerConsumer pc(h.rt);
  h.driver.addVoid("p", 1, "send(q)", [&pc] { pc.send("q"); }, {{1, 1}});
  Call bad;
  bad.thread = "c";
  bad.startTick = 2;
  bad.label = "receive()";
  bad.action = [&pc]() -> std::int64_t { return pc.receive(); };
  bad.expectedValue = 'z';  // wrong
  h.driver.add(bad);
  auto res = h.driver.execute();
  std::string text = res.describe();
  EXPECT_NE(text.find("PASS"), std::string::npos);
  EXPECT_NE(text.find("FAIL"), std::string::npos);
  EXPECT_NE(text.find("wrong value"), std::string::npos);
  EXPECT_NE(text.find("1 FAILED"), std::string::npos);
  EXPECT_EQ(res.failures(), 1u);
}

TEST(ConanExtra, HangReportSaysHung) {
  Harness h;
  ProducerConsumer pc(h.rt);
  Call r;
  r.thread = "c";
  r.startTick = 1;
  r.label = "receive()";
  r.action = [&pc]() -> std::int64_t { return pc.receive(); };
  h.driver.add(r);  // nobody sends: hangs, and that was not expected
  auto res = h.driver.execute();
  EXPECT_EQ(res.run.outcome, sched::Outcome::Deadlock);
  std::string text = res.reports[0].describe();
  EXPECT_NE(text.find("did not complete"), std::string::npos);
  EXPECT_NE(text.find("(hung)"), std::string::npos);
}

TEST(ConanExtra, ZeroTickCallsRunImmediately) {
  Harness h;
  std::vector<int> order;
  h.driver.addVoid("a", 0, "first", [&order] { order.push_back(1); });
  h.driver.addVoid("a", 0, "second", [&order] { order.push_back(2); });
  auto res = h.driver.execute();
  ASSERT_EQ(res.run.outcome, sched::Outcome::Completed);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(res.reports[0].completedAtTick, 0u);
}

TEST(ConanExtra, ManyThreadsManyTicksCompleteInTickOrder) {
  Harness h;
  std::vector<std::string> log;
  for (int t = 0; t < 5; ++t) {
    for (int call = 0; call < 3; ++call) {
      std::uint64_t tick = static_cast<std::uint64_t>(3 * t + call + 1);
      h.driver.addVoid("t" + std::to_string(t), tick,
                       "c" + std::to_string(tick), [&log, tick] {
                         log.push_back(std::to_string(tick));
                       });
    }
  }
  auto res = h.driver.execute();
  ASSERT_EQ(res.run.outcome, sched::Outcome::Completed);
  ASSERT_EQ(log.size(), 15u);
  for (std::size_t i = 1; i < log.size(); ++i) {
    EXPECT_LE(std::stoul(log[i - 1]), std::stoul(log[i]));
  }
}
