// Unit tests for the Java-monitor substrate: mutual exclusion, reentrancy,
// wait/notify/notifyAll semantics, illegal-state errors, event emission
// (Figure-1 transitions), wake policies, spurious wakeups, and real mode.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "confail/events/trace.hpp"
#include "confail/monitor/monitor.hpp"
#include "confail/monitor/runtime.hpp"
#include "confail/monitor/shared_var.hpp"
#include "confail/sched/explorer.hpp"
#include "confail/sched/virtual_scheduler.hpp"

namespace ev = confail::events;
namespace mon = confail::monitor;
namespace sched = confail::sched;
using confail::IllegalMonitorState;
using ev::EventKind;
using mon::Monitor;
using mon::Runtime;
using mon::Synchronized;
using sched::Outcome;

namespace {

// Convenience harness: builds trace + scheduler + runtime, runs a program.
struct VirtualHarness {
  ev::Trace trace;
  sched::RoundRobinStrategy strategy;
  sched::VirtualScheduler sched{strategy};
  Runtime rt{trace, sched, /*seed=*/1};

  sched::RunResult run() { return sched.run(); }

  std::vector<EventKind> kinds() const {
    std::vector<EventKind> out;
    for (const auto& e : trace.events()) out.push_back(e.kind);
    return out;
  }

  std::size_t count(EventKind k) const {
    std::size_t n = 0;
    for (const auto& e : trace.events()) n += (e.kind == k) ? 1 : 0;
    return n;
  }
};

}  // namespace

TEST(Monitor, MutualExclusionUnderContention) {
  VirtualHarness h;
  Monitor m(h.rt, "m");
  int inside = 0;
  int maxInside = 0;
  for (int t = 0; t < 4; ++t) {
    h.rt.spawn("t" + std::to_string(t), [&] {
      for (int i = 0; i < 25; ++i) {
        Synchronized sync(m);
        ++inside;
        maxInside = std::max(maxInside, inside);
        h.rt.schedulePoint();  // invite preemption inside the critical section
        --inside;
      }
    });
  }
  auto r = h.run();
  EXPECT_EQ(r.outcome, Outcome::Completed);
  EXPECT_EQ(maxInside, 1) << "two threads were inside the critical section";
  EXPECT_EQ(inside, 0);
}

TEST(Monitor, ReentrantLockReleasesAtOutermostExitOnly) {
  VirtualHarness h;
  Monitor m(h.rt, "m");
  h.rt.spawn("t", [&] {
    m.lock();
    EXPECT_EQ(m.depth(), 1u);
    m.lock();
    EXPECT_EQ(m.depth(), 2u);
    m.unlock();
    EXPECT_TRUE(m.heldByCurrent());
    m.unlock();
    EXPECT_FALSE(m.heldByCurrent());
  });
  auto r = h.run();
  ASSERT_EQ(r.outcome, Outcome::Completed);
  // Exactly one T2 and one T4: inner lock/unlock are silent (single-token model).
  EXPECT_EQ(h.count(EventKind::LockAcquire), 1u);
  EXPECT_EQ(h.count(EventKind::LockRelease), 1u);
  EXPECT_EQ(h.count(EventKind::LockRequest), 1u);
}

TEST(Monitor, WaitReleasesLockAndNotifyWakes) {
  VirtualHarness h;
  Monitor m(h.rt, "m");
  bool ready = false;
  bool consumed = false;
  h.rt.spawn("consumer", [&] {
    Synchronized sync(m);
    while (!ready) m.wait();
    consumed = true;
  });
  h.rt.spawn("producer", [&] {
    Synchronized sync(m);
    ready = true;
    m.notifyOne();
  });
  auto r = h.run();
  EXPECT_EQ(r.outcome, Outcome::Completed);
  EXPECT_TRUE(consumed);
  EXPECT_EQ(h.count(EventKind::WaitBegin), 1u);
  EXPECT_EQ(h.count(EventKind::Notified), 1u);
}

TEST(Monitor, WaitRestoresRecursionDepth) {
  VirtualHarness h;
  Monitor m(h.rt, "m");
  bool flag = false;
  h.rt.spawn("waiter", [&] {
    m.lock();
    m.lock();  // depth 2
    while (!flag) m.wait();
    EXPECT_EQ(m.depth(), 2u);  // restored after re-acquire
    m.unlock();
    m.unlock();
  });
  h.rt.spawn("setter", [&] {
    Synchronized sync(m);  // acquirable because wait released fully
    flag = true;
    m.notifyOne();
  });
  auto r = h.run();
  EXPECT_EQ(r.outcome, Outcome::Completed);
}

TEST(Monitor, NotifyWithNoWaitersIsLost) {
  // Notify first, wait second: the waiter sleeps forever -> deadlock
  // (failure class FF-T5: the notification is not sticky).
  VirtualHarness h;
  Monitor m(h.rt, "m");
  h.rt.spawn("notifier", [&] {
    Synchronized sync(m);
    m.notifyOne();
  });
  h.rt.spawn("waiter", [&] {
    m.lock();
    m.wait();  // never notified again
    m.unlock();
  });
  auto r = h.run();
  ASSERT_EQ(r.outcome, Outcome::Deadlock);
  ASSERT_EQ(r.blocked.size(), 1u);
  EXPECT_EQ(r.blocked[0].kind, sched::BlockKind::CondWait);
}

TEST(Monitor, NotifyAllWakesEveryWaiter) {
  VirtualHarness h;
  Monitor m(h.rt, "m");
  int woke = 0;
  bool go = false;
  for (int i = 0; i < 3; ++i) {
    h.rt.spawn("w" + std::to_string(i), [&] {
      Synchronized sync(m);
      while (!go) m.wait();
      ++woke;
    });
  }
  h.rt.spawn("broadcaster", [&] {
    // Let all three park in the wait set first (round-robin guarantees the
    // waiters run before this thread's lock() completes... ensure anyway).
    for (int k = 0; k < 10; ++k) h.rt.schedulePoint();
    Synchronized sync(m);
    go = true;
    m.notifyAll();
  });
  auto r = h.run();
  EXPECT_EQ(r.outcome, Outcome::Completed);
  EXPECT_EQ(woke, 3);
}

TEST(Monitor, NotifyOneWakesExactlyOne) {
  VirtualHarness h;
  Monitor m(h.rt, "m");
  bool go = false;
  for (int i = 0; i < 3; ++i) {
    h.rt.spawn("w" + std::to_string(i), [&] {
      Synchronized sync(m);
      while (!go) m.wait();
    });
  }
  h.rt.spawn("single-notify", [&] {
    for (int k = 0; k < 10; ++k) h.rt.schedulePoint();
    Synchronized sync(m);
    go = true;
    m.notifyOne();  // only one of three wakes; the others sleep forever
  });
  auto r = h.run();
  ASSERT_EQ(r.outcome, Outcome::Deadlock);
  EXPECT_EQ(r.blocked.size(), 2u);
}

TEST(Monitor, IllegalMonitorStateErrors) {
  VirtualHarness h;
  Monitor m(h.rt, "m");
  h.rt.spawn("offender", [&] {
    EXPECT_THROW(m.wait(), IllegalMonitorState);
    EXPECT_THROW(m.notifyOne(), IllegalMonitorState);
    EXPECT_THROW(m.notifyAll(), IllegalMonitorState);
    EXPECT_THROW(m.unlock(), IllegalMonitorState);
  });
  auto r = h.run();
  EXPECT_EQ(r.outcome, Outcome::Completed);
}

TEST(Monitor, UnlockByNonOwnerThrows) {
  VirtualHarness h;
  Monitor m(h.rt, "m");
  h.rt.spawn("owner", [&] {
    m.lock();
    for (int k = 0; k < 4; ++k) h.rt.schedulePoint();
    m.unlock();
  });
  h.rt.spawn("thief", [&] {
    EXPECT_THROW(m.unlock(), IllegalMonitorState);
  });
  auto r = h.run();
  EXPECT_EQ(r.outcome, Outcome::Completed);
}

TEST(Monitor, TransitionEventSequenceMatchesFigure1) {
  // One uncontended synchronized block with a wait/notify pair:
  // the waiter's journey must be T1 T2 T3 T5 T2 T4 (Figure 1 path
  // A->B->C->D->B->C->A), as recorded in the trace.
  VirtualHarness h;
  Monitor m(h.rt, "m");
  bool go = false;
  auto waiter = h.rt.spawn("waiter", [&] {
    Synchronized sync(m);
    while (!go) m.wait();
  });
  h.rt.spawn("notifier", [&] {
    for (int k = 0; k < 5; ++k) h.rt.schedulePoint();
    Synchronized sync(m);
    go = true;
    m.notifyAll();
  });
  auto r = h.run();
  ASSERT_EQ(r.outcome, Outcome::Completed);
  std::vector<EventKind> journey;
  for (const auto& e : h.trace.events()) {
    if (e.thread == waiter && ev::isModelTransition(e.kind)) {
      journey.push_back(e.kind);
    }
  }
  EXPECT_EQ(journey,
            (std::vector<EventKind>{EventKind::LockRequest, EventKind::LockAcquire,
                                    EventKind::WaitBegin, EventKind::Notified,
                                    EventKind::LockAcquire, EventKind::LockRelease}));
}

TEST(Monitor, FifoWakePolicyWakesOldestWaiter) {
  VirtualHarness h;
  Monitor::Options opts;
  opts.wakePolicy = mon::SelectPolicy::Fifo;
  Monitor m(h.rt, "m", opts);
  std::vector<int> wakeOrder;
  bool go = false;
  for (int i = 0; i < 3; ++i) {
    h.rt.spawn("w" + std::to_string(i), [&, i] {
      Synchronized sync(m);
      while (!go) m.wait();
      wakeOrder.push_back(i);
      m.notifyOne();  // chain to the next
    });
  }
  h.rt.spawn("kick", [&] {
    for (int k = 0; k < 10; ++k) h.rt.schedulePoint();
    Synchronized sync(m);
    go = true;
    m.notifyOne();
  });
  auto r = h.run();
  ASSERT_EQ(r.outcome, Outcome::Completed);
  // Round-robin spawning means w0 waits first; FIFO wakes in wait order.
  EXPECT_EQ(wakeOrder, (std::vector<int>{0, 1, 2}));
}

TEST(Monitor, LifoWakePolicyWakesNewestWaiter) {
  VirtualHarness h;
  Monitor::Options opts;
  opts.wakePolicy = mon::SelectPolicy::Lifo;
  Monitor m(h.rt, "m", opts);
  std::vector<int> wakeOrder;
  bool go = false;
  for (int i = 0; i < 3; ++i) {
    h.rt.spawn("w" + std::to_string(i), [&, i] {
      Synchronized sync(m);
      while (!go) m.wait();
      wakeOrder.push_back(i);
      m.notifyOne();
    });
  }
  h.rt.spawn("kick", [&] {
    for (int k = 0; k < 10; ++k) h.rt.schedulePoint();
    Synchronized sync(m);
    go = true;
    m.notifyOne();
  });
  auto r = h.run();
  ASSERT_EQ(r.outcome, Outcome::Completed);
  EXPECT_EQ(wakeOrder, (std::vector<int>{2, 1, 0}));
}

TEST(Monitor, SpuriousWakeupsSurviveGuardedWait) {
  // With spurious wakeups injected, a while-guarded wait still behaves
  // correctly (the guard re-check absorbs them).
  VirtualHarness h;
  Monitor::Options opts;
  opts.spuriousWakeProbability = 0.5;
  Monitor m(h.rt, "m", opts);
  bool go = false;
  bool done = false;
  h.rt.spawn("guarded", [&] {
    Synchronized sync(m);
    while (!go) m.wait();
    done = true;
  });
  h.rt.spawn("churn", [&] {
    // Lock/unlock repeatedly: each unlock is a spurious-wake opportunity.
    for (int i = 0; i < 20; ++i) {
      Synchronized sync(m);
      h.rt.schedulePoint();
    }
    Synchronized sync(m);
    go = true;
    m.notifyAll();
  });
  auto r = h.run();
  EXPECT_EQ(r.outcome, Outcome::Completed);
  EXPECT_TRUE(done);
  EXPECT_GT(h.count(EventKind::SpuriousWake), 0u)
      << "seed produced no spurious wakeups; adjust seed";
}

TEST(Monitor, WaitSetAndEntryQueueIntrospection) {
  VirtualHarness h;
  Monitor m(h.rt, "m");
  bool go = false;
  h.rt.spawn("w", [&] {
    Synchronized sync(m);
    while (!go) m.wait();
  });
  h.rt.spawn("check", [&] {
    for (int k = 0; k < 5; ++k) h.rt.schedulePoint();
    EXPECT_EQ(m.waitSetSize(), 1u);
    Synchronized sync(m);
    go = true;
    m.notifyAll();
    EXPECT_EQ(m.waitSetSize(), 0u);
    EXPECT_EQ(m.entryQueueLength(), 1u);  // notified, waiting for the lock
  });
  auto r = h.run();
  EXPECT_EQ(r.outcome, Outcome::Completed);
}

TEST(SharedVar, EmitsReadAndWriteEvents) {
  VirtualHarness h;
  mon::SharedVar<int> x(h.rt, "x", 0);
  h.rt.spawn("t", [&] {
    x.set(5);
    EXPECT_EQ(x.get(), 5);
  });
  auto r = h.run();
  ASSERT_EQ(r.outcome, Outcome::Completed);
  EXPECT_EQ(h.count(EventKind::Write), 1u);
  EXPECT_EQ(h.count(EventKind::Read), 1u);
  EXPECT_EQ(x.peek(), 5);
}

TEST(SharedVar, LostUpdateManifestsUnderAdversarialSchedule) {
  // Unsynchronized increment: find a schedule in which an update is lost.
  sched::ExhaustiveExplorer::Options eopts;
  eopts.maxRuns = 2000;
  bool lostUpdateSeen = false;
  sched::ExhaustiveExplorer explorer2(eopts);
  auto stats = explorer2.explore([&lostUpdateSeen](sched::VirtualScheduler& s) {
    struct State {
      ev::Trace trace;
      Runtime rt;
      mon::SharedVar<int> x;
      explicit State(sched::VirtualScheduler& sc) : rt(trace, sc, 1), x(rt, "x", 0) {}
    };
    auto st = std::make_shared<State>(s);
    auto done = std::make_shared<int>(0);
    for (int t = 0; t < 2; ++t) {
      st->rt.spawn("inc" + std::to_string(t), [st, done, &lostUpdateSeen] {
        int v = st->x.get();
        st->x.set(v + 1);
        if (++*done == 2 && st->x.peek() != 2) lostUpdateSeen = true;
      });
    }
  });
  EXPECT_TRUE(stats.exhausted);
  EXPECT_TRUE(lostUpdateSeen) << "no schedule lost an update";
}

TEST(MonitorReal, BasicMutualExclusionAndWaitNotify) {
  ev::Trace trace;
  Runtime rt(trace, /*seed=*/3);
  Monitor m(rt, "m");
  int shared = 0;
  bool ready = false;
  rt.spawn("producer", [&] {
    Synchronized sync(m);
    shared = 99;
    ready = true;
    m.notifyAll();
  });
  rt.spawn("consumer", [&] {
    Synchronized sync(m);
    while (!ready) m.wait();
    EXPECT_EQ(shared, 99);
  });
  rt.joinAll();
  EXPECT_GE(trace.size(), 6u);
}

TEST(MonitorReal, ContendedCounterStaysConsistent) {
  ev::Trace trace;
  Runtime rt(trace, /*seed=*/4);
  Monitor m(rt, "m");
  int counter = 0;
  for (int t = 0; t < 4; ++t) {
    rt.spawn("t" + std::to_string(t), [&] {
      for (int i = 0; i < 500; ++i) {
        Synchronized sync(m);
        ++counter;
      }
    });
  }
  rt.joinAll();
  EXPECT_EQ(counter, 2000);
}

TEST(MonitorReal, Reentrancy) {
  ev::Trace trace;
  Runtime rt(trace, /*seed=*/5);
  Monitor m(rt, "m");
  rt.spawn("t", [&] {
    m.lock();
    m.lock();
    EXPECT_EQ(m.depth(), 2u);
    m.unlock();
    m.unlock();
    EXPECT_EQ(m.depth(), 0u);
  });
  rt.joinAll();
}

TEST(MonitorReal, PingPongRegressionNoStolenSignals) {
  // Regression: the real-mode wait set once used counting semantics, which
  // let a thread that started waiting after a notify consume it — producer
  // and consumer both asleep (lost-wakeup deadlock) within a few hundred
  // messages of ping-pong.  The ticket-based wait set must sustain this
  // indefinitely.
  ev::Trace trace;
  Runtime rt(trace, 7);
  Monitor m(rt, "pingpong");
  int turn = 0;
  const int rounds = 3000;
  rt.spawn("even", [&] {
    for (int i = 0; i < rounds; ++i) {
      Synchronized sync(m);
      while (turn % 2 != 0) m.wait();
      ++turn;
      m.notifyAll();
    }
  });
  rt.spawn("odd", [&] {
    for (int i = 0; i < rounds; ++i) {
      Synchronized sync(m);
      while (turn % 2 != 1) m.wait();
      ++turn;
      m.notifyAll();
    }
  });
  rt.joinAll();
  EXPECT_EQ(turn, 2 * rounds);
}

TEST(MonitorReal, NotifyOneUnderChurnWakesCorrectWaiters) {
  // Mixed notify-one traffic with late-arriving waiters: every waiter whose
  // condition was made true must eventually proceed.
  ev::Trace trace;
  Runtime rt(trace, 8);
  Monitor m(rt, "churn");
  int tokens = 0;
  int consumed = 0;
  const int total = 500;
  for (int c = 0; c < 3; ++c) {
    rt.spawn("consumer" + std::to_string(c), [&] {
      for (int i = 0; i < total / 1; ++i) {
        Synchronized sync(m);
        while (tokens == 0) {
          if (consumed >= total) return;
          m.wait();
        }
        --tokens;
        ++consumed;
      }
    });
  }
  rt.spawn("producer", [&] {
    for (int i = 0; i < total; ++i) {
      Synchronized sync(m);
      ++tokens;
      m.notifyOne();
    }
    // Release any consumers still parked after the last token.
    Synchronized sync(m);
    m.notifyAll();
  });
  rt.joinAll();
  EXPECT_EQ(consumed, total);
  EXPECT_EQ(tokens, 0);
}

TEST(Monitor, DeadlockTeardownWithLocksHeldIsClean) {
  // A deadlock where some threads hold locks and others wait: the abort
  // teardown must unwind all Synchronized guards without crashing or
  // hanging (regression for grant-to-finished-thread during abort).
  VirtualHarness h;
  Monitor m1(h.rt, "m1"), m2(h.rt, "m2");
  h.rt.spawn("holder", [&] {
    Synchronized a(m1);
    while (true) {
      h.rt.schedulePoint();
      Synchronized b(m2);  // repeatedly acquires m2 while holding m1
    }
  });
  h.rt.spawn("waiter", [&] {
    Synchronized b(m2);
    m2.wait();  // never notified
  });
  h.rt.spawn("blocked", [&] {
    for (int k = 0; k < 6; ++k) h.rt.schedulePoint();
    Synchronized a(m1);  // m1 is held by the spinning holder
  });
  auto r = h.run();
  // Either the step limit trips (holder spins) or a deadlock is detected —
  // both must tear down cleanly.
  EXPECT_NE(r.outcome, sched::Outcome::Completed);
}

TEST(Monitor, AbortWhileManyQueuedOnOneMonitor) {
  VirtualHarness h;
  Monitor m(h.rt, "hot");
  h.rt.spawn("sleeper", [&] {
    Synchronized sync(m);
    m.wait();  // blocks holding nothing; never notified
  });
  for (int t = 0; t < 5; ++t) {
    h.rt.spawn("q" + std::to_string(t), [&] {
      for (int k = 0; k < 3; ++k) h.rt.schedulePoint();
      Synchronized sync(m);
      m.wait();
    });
  }
  auto r = h.run();
  EXPECT_EQ(r.outcome, sched::Outcome::Deadlock);
  EXPECT_EQ(r.blocked.size(), 6u);
}
