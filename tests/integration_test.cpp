// Integration tests: the complete pipeline — scripted deterministic
// execution, detector battery, completion-time checking, taxonomy
// classification — applied to a catalog of seeded mutants across all
// components.  Each mutant must land in its intended Table 1 class, and
// every correct component must come out clean end to end.
#include <gtest/gtest.h>

#include <functional>
#include <string>

#include "confail/clock/abstract_clock.hpp"
#include "confail/components/barrier.hpp"
#include "confail/components/bounded_buffer.hpp"
#include "confail/components/latch.hpp"
#include "confail/components/producer_consumer.hpp"
#include "confail/components/readers_writers.hpp"
#include "confail/components/semaphore.hpp"
#include "confail/conan/test_driver.hpp"
#include "confail/detect/hb_detector.hpp"
#include "confail/detect/lock_graph.hpp"
#include "confail/detect/lockset.hpp"
#include "confail/detect/release_discipline.hpp"
#include "confail/detect/starvation.hpp"
#include "confail/detect/unnecessary_sync.hpp"
#include "confail/detect/wait_notify.hpp"
#include "confail/events/trace.hpp"
#include "confail/monitor/runtime.hpp"
#include "confail/sched/virtual_scheduler.hpp"
#include "confail/taxonomy/classifier.hpp"

namespace comps = confail::components;
namespace detect = confail::detect;
namespace ev = confail::events;
namespace sched = confail::sched;
namespace tax = confail::taxonomy;
using confail::clock::AbstractClock;
using confail::conan::Call;
using confail::conan::TestDriver;
using confail::monitor::Runtime;
using tax::FailureClass;

namespace {

struct Pipeline {
  ev::Trace trace;
  sched::RoundRobinStrategy strategy;
  sched::VirtualScheduler sched{strategy};
  Runtime rt{trace, sched, 1};
  AbstractClock clk{rt};
  TestDriver driver{rt, clk};

  std::vector<detect::Finding> detectAll() {
    detect::LocksetDetector lockset;
    detect::HbDetector hb;
    detect::LockOrderGraph lg;
    detect::WaitNotifyAnalyzer wn;
    detect::StarvationDetector sv;
    detect::UnnecessarySyncDetector us;
    detect::ReleaseDisciplineDetector rd;
    std::vector<detect::Finding> all;
    for (detect::Detector* d : std::initializer_list<detect::Detector*>{
             &lockset, &hb, &lg, &wn, &sv, &us, &rd}) {
      auto fs = d->analyze(trace);
      all.insert(all.end(), fs.begin(), fs.end());
    }
    return all;
  }

  tax::FailureReport classify(const confail::conan::Results& results) {
    return tax::Classifier::classifyAll(detectAll(), results.run, results,
                                        trace);
  }
};

// A mutant case: builds the component + scripted scenario on the pipeline,
// returns the class the pipeline is expected to report.
struct MutantCase {
  std::string name;
  FailureClass expected;
  std::function<confail::conan::Results(Pipeline&)> run;
};

std::string mutantName(const testing::TestParamInfo<MutantCase>& info) {
  return info.param.name;
}

confail::conan::Results pcScenario(Pipeline& p, comps::ProducerConsumer& pc) {
  Call r;
  r.thread = "consumer";
  r.startTick = 1;
  r.label = "receive()";
  r.action = [&pc]() -> std::int64_t { return pc.receive(); };
  r.completionWindow = {{3, 3}};
  r.expectedValue = 'x';
  r.expectWait = true;
  p.driver.add(r);
  p.driver.addVoid("producer", 3, "send(x)", [&pc] { pc.send("x"); });
  return p.driver.execute();
}

std::vector<MutantCase> mutantCatalog() {
  std::vector<MutantCase> cases;

  auto addPc = [&cases](std::string name, FailureClass cls,
                        comps::ProducerConsumer::Faults f) {
    cases.push_back(MutantCase{
        std::move(name), cls, [f](Pipeline& p) {
          // The component must outlive driver.execute(); tie it to the
          // pipeline via a static-free heap allocation owned by the lambda
          // chain below.
          auto pc = std::make_shared<comps::ProducerConsumer>(p.rt, f);
          auto results = pcScenario(p, *pc);
          return results;
        }});
  };

  // skipSync busy-waits instead of blocking, which starves the abstract
  // clock (it only advances when no thread is runnable) — so this mutant
  // gets a clock-free scenario with plainly spawned racing threads.
  cases.push_back(MutantCase{
      "pc_skipSync_FFT1", FailureClass::FF_T1, [](Pipeline& p) {
        comps::ProducerConsumer::Faults f;
        f.skipSync = true;
        auto pc = std::make_shared<comps::ProducerConsumer>(p.rt, f);
        p.rt.spawn("producer", [pc] { pc->send("ab"); });
        for (int c = 0; c < 2; ++c) {
          p.rt.spawn("consumer" + std::to_string(c),
                     [pc] { (void)pc->receive(); });
        }
        confail::conan::Results results;
        results.run = p.sched.run();
        return results;
      }});
  {
    comps::ProducerConsumer::Faults f;
    f.skipWaitReceive = true;
    addPc("pc_skipWait_FFT3", FailureClass::FF_T3, f);
  }
  // The erroneous-wait mutant needs the single-call script: a lone send on
  // an empty buffer must complete immediately; the tester declares
  // expectWait=false, so the hang is classified as an unexpected wait.
  cases.push_back(MutantCase{
      "pc_erroneousWait_EFT3", FailureClass::EF_T3, [](Pipeline& p) {
        comps::ProducerConsumer::Faults f;
        f.erroneousWaitSend = true;
        auto pc = std::make_shared<comps::ProducerConsumer>(p.rt, f);
        Call s;
        s.thread = "producer";
        s.startTick = 1;
        s.label = "send(x)";
        s.action = [pc]() -> std::int64_t {
          pc->send("x");
          return 0;
        };
        s.completionWindow = {{1, 1}};
        s.expectWait = false;
        p.driver.add(s);
        return p.driver.execute();
      }});
  {
    comps::ProducerConsumer::Faults f;
    f.holdLockForever = true;
    addPc("pc_holdLock_FFT4", FailureClass::FF_T4, f);
  }
  {
    comps::ProducerConsumer::Faults f;
    f.earlyReleaseSend = true;
    addPc("pc_earlyRelease_EFT4", FailureClass::EF_T4, f);
  }
  {
    comps::ProducerConsumer::Faults f;
    f.skipNotify = true;
    addPc("pc_skipNotify_FFT5", FailureClass::FF_T5, f);
  }
  {
    comps::ProducerConsumer::Faults f;
    f.ifInsteadOfWhile = true;
    addPc("pc_ifGuard_EFT5", FailureClass::EF_T5, f);
  }

  // BoundedBuffer: notify() instead of notifyAll() under a mixed-waiter
  // load that deterministically strands a waiter (FF-T5).
  cases.push_back(MutantCase{
      "buf_notifyOne_FFT5", FailureClass::FF_T5, [](Pipeline& p) {
        comps::BoundedBuffer<int>::Faults f;
        f.notifyOneOnly = true;
        auto buf = std::make_shared<comps::BoundedBuffer<int>>(p.rt, "buf", 1, f);
        // Producer fills; two consumers wait on empty; producer's put wakes
        // only one; the second consumer hangs.
        Call t1;
        t1.thread = "c1";
        t1.startTick = 1;
        t1.label = "take()";
        t1.action = [buf]() -> std::int64_t { return buf->take(); };
        t1.expectWait = true;
        p.driver.add(t1);
        Call t2 = t1;
        t2.thread = "c2";
        t2.startTick = 2;
        p.driver.add(t2);
        p.driver.addVoid("p", 3, "put(7)", [buf] { buf->put(7); });
        return p.driver.execute();
      }});

  // Semaphore: release without notify (FF-T5).
  cases.push_back(MutantCase{
      "sem_skipNotify_FFT5", FailureClass::FF_T5, [](Pipeline& p) {
        comps::CountingSemaphore::Faults f;
        f.skipNotify = true;
        auto sem = std::make_shared<comps::CountingSemaphore>(p.rt, "sem", 0, f);
        Call a;
        a.thread = "taker";
        a.startTick = 1;
        a.label = "acquire()";
        a.action = [sem]() -> std::int64_t {
          sem->acquire();
          return 0;
        };
        a.expectWait = true;
        a.completionWindow = {{2, 2}};
        p.driver.add(a);
        p.driver.addVoid("giver", 2, "release()", [sem] { sem->release(); });
        return p.driver.execute();
      }});

  // Barrier: notify() strands all but one waiter (FF-T5).
  cases.push_back(MutantCase{
      "barrier_notifyOne_FFT5", FailureClass::FF_T5, [](Pipeline& p) {
        comps::CyclicBarrier::Faults f;
        f.notifyOneOnly = true;
        auto bar = std::make_shared<comps::CyclicBarrier>(p.rt, "bar", 3, f);
        for (int t = 0; t < 3; ++t) {
          Call c;
          c.thread = "t" + std::to_string(t);
          c.startTick = static_cast<std::uint64_t>(t + 1);
          c.label = "await()";
          c.action = [bar]() -> std::int64_t { return bar->await(); };
          p.driver.add(c);
        }
        return p.driver.execute();
      }});

  // Latch: countDown without notify (FF-T5).
  cases.push_back(MutantCase{
      "latch_skipNotify_FFT5", FailureClass::FF_T5, [](Pipeline& p) {
        comps::CountDownLatch::Faults f;
        f.skipNotify = true;
        auto latch = std::make_shared<comps::CountDownLatch>(p.rt, "latch", 1, f);
        Call a;
        a.thread = "awaiter";
        a.startTick = 1;
        a.label = "await()";
        a.action = [latch]() -> std::int64_t {
          latch->await();
          return 0;
        };
        a.expectWait = true;
        p.driver.add(a);
        p.driver.addVoid("counter", 2, "countDown()",
                         [latch] { latch->countDown(); });
        return p.driver.execute();
      }});

  // ReadersWriters: unsynchronized endRead (FF-T1).
  cases.push_back(MutantCase{
      "rw_unsyncedEndRead_FFT1", FailureClass::FF_T1, [](Pipeline& p) {
        comps::ReadersWriters::Faults f;
        f.unsyncedEndRead = true;
        auto rw = std::make_shared<comps::ReadersWriters>(
            p.rt, comps::ReadersWriters::Preference::Readers, f);
        for (int t = 0; t < 2; ++t) {
          p.driver.addVoid("r" + std::to_string(t), 1, "read-cycle", [rw] {
            for (int i = 0; i < 5; ++i) {
              rw->startRead();
              rw->endRead();
            }
          });
        }
        return p.driver.execute();
      }});

  return cases;
}

class MutantPipeline : public testing::TestWithParam<MutantCase> {};

}  // namespace

TEST_P(MutantPipeline, ClassifiedIntoIntendedTableOneClass) {
  const MutantCase& mc = GetParam();
  Pipeline p;
  auto results = mc.run(p);
  auto report = p.classify(results);
  EXPECT_TRUE(report.has(mc.expected))
      << "expected " << tax::failureClassName(mc.expected)
      << " but report was:\n"
      << report.describe();
}

INSTANTIATE_TEST_SUITE_P(Catalog, MutantPipeline,
                         testing::ValuesIn(mutantCatalog()), mutantName);

// ---------------------------------------------------------------------------
// The correct components must come out clean through the same pipeline.
// ---------------------------------------------------------------------------

TEST(CleanPipeline, CorrectProducerConsumerIsClean) {
  Pipeline p;
  comps::ProducerConsumer pc(p.rt);
  auto results = pcScenario(p, pc);
  ASSERT_TRUE(results.allPassed()) << results.describe();
  auto report = p.classify(results);
  EXPECT_TRUE(report.failures.empty()) << report.describe();
}

TEST(CleanPipeline, CorrectBoundedBufferIsClean) {
  Pipeline p;
  comps::BoundedBuffer<int> buf(p.rt, "buf", 2);
  p.driver.addVoid("c1", 1, "take", [&buf] { (void)buf.take(); });
  p.driver.addVoid("c2", 2, "take", [&buf] { (void)buf.take(); });
  p.driver.addVoid("p", 3, "put", [&buf] { buf.put(1); });
  p.driver.addVoid("p", 4, "put", [&buf] { buf.put(2); });
  p.driver.addVoid("p", 5, "put", [&buf] { buf.put(3); });
  p.driver.addVoid("c1", 6, "take", [&buf] { (void)buf.take(); });
  auto results = p.driver.execute();
  ASSERT_EQ(results.run.outcome, sched::Outcome::Completed);
  auto report = p.classify(results);
  EXPECT_TRUE(report.failures.empty()) << report.describe();
}

TEST(CleanPipeline, CorrectBarrierIsClean) {
  Pipeline p;
  comps::CyclicBarrier bar(p.rt, "bar", 3);
  for (int t = 0; t < 3; ++t) {
    p.driver.addVoid("t" + std::to_string(t),
                     static_cast<std::uint64_t>(t + 1), "await",
                     [&bar] { (void)bar.await(); });
  }
  auto results = p.driver.execute();
  ASSERT_EQ(results.run.outcome, sched::Outcome::Completed);
  auto report = p.classify(results);
  EXPECT_TRUE(report.failures.empty()) << report.describe();
}

TEST(CleanPipeline, CorrectSemaphoreAndLatchAreClean) {
  Pipeline p;
  comps::CountingSemaphore sem(p.rt, "sem", 1);
  comps::CountDownLatch latch(p.rt, "latch", 2);
  p.driver.addVoid("a", 1, "acquire", [&sem] { sem.acquire(); });
  p.driver.addVoid("a", 2, "release", [&sem] { sem.release(); });
  p.driver.addVoid("b", 3, "await", [&latch] { latch.await(); });
  p.driver.addVoid("a", 4, "countDown", [&latch] { latch.countDown(); });
  p.driver.addVoid("a", 5, "countDown", [&latch] { latch.countDown(); });
  auto results = p.driver.execute();
  ASSERT_EQ(results.run.outcome, sched::Outcome::Completed);
  auto report = p.classify(results);
  EXPECT_TRUE(report.failures.empty()) << report.describe();
}
