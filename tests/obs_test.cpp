// Unit tests for the observability layer: metric primitives (counters,
// gauges, log2 histograms, scoped timers), snapshot serialization, the JSON
// writer/parser pair, and the structured trace exporters.
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "confail/events/trace.hpp"
#include "confail/obs/json.hpp"
#include "confail/obs/metrics.hpp"
#include "confail/obs/trace_export.hpp"
#include "confail/support/assert.hpp"

namespace ev = confail::events;
namespace obs = confail::obs;

// ---- histogram bucket geometry --------------------------------------------

TEST(Histogram, BucketIndexBoundaries) {
  // Bucket 0 holds exactly v == 0; bucket i (i >= 1) holds [2^(i-1), 2^i).
  EXPECT_EQ(obs::Histogram::bucketIndex(0), 0u);
  EXPECT_EQ(obs::Histogram::bucketIndex(1), 1u);
  EXPECT_EQ(obs::Histogram::bucketIndex(2), 2u);
  EXPECT_EQ(obs::Histogram::bucketIndex(3), 2u);
  EXPECT_EQ(obs::Histogram::bucketIndex(4), 3u);
  EXPECT_EQ(obs::Histogram::bucketIndex(7), 3u);
  EXPECT_EQ(obs::Histogram::bucketIndex(8), 4u);
  EXPECT_EQ(obs::Histogram::bucketIndex(1023), 10u);
  EXPECT_EQ(obs::Histogram::bucketIndex(1024), 11u);
  EXPECT_EQ(obs::Histogram::bucketIndex(~0ull), 64u);
  // Every bucket's inclusive upper bound maps back into that bucket, and
  // the next value maps into the next bucket.
  for (std::size_t i = 0; i + 1 < obs::Histogram::kBuckets; ++i) {
    const std::uint64_t ub = obs::Histogram::bucketUpperBound(i);
    EXPECT_EQ(obs::Histogram::bucketIndex(ub), i) << "bucket " << i;
    EXPECT_EQ(obs::Histogram::bucketIndex(ub + 1), i + 1) << "bucket " << i;
  }
  EXPECT_EQ(obs::Histogram::bucketUpperBound(0), 0u);
  EXPECT_EQ(obs::Histogram::bucketUpperBound(1), 1u);
  EXPECT_EQ(obs::Histogram::bucketUpperBound(4), 15u);
  EXPECT_EQ(obs::Histogram::bucketUpperBound(64), ~0ull);
}

TEST(Histogram, ObserveTracksStats) {
  obs::Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0u);  // empty histogram reports 0, not ~0
  EXPECT_EQ(h.max(), 0u);
  for (std::uint64_t v : {5ull, 9ull, 100ull, 0ull}) h.observe(v);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.sum(), 114u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 100u);
  EXPECT_EQ(h.bucketCount(0), 1u);  // the 0
  EXPECT_EQ(h.bucketCount(3), 1u);  // 5 in [4,8)
  EXPECT_EQ(h.bucketCount(4), 1u);  // 9 in [8,16)
  EXPECT_EQ(h.bucketCount(7), 1u);  // 100 in [64,128)
}

TEST(Histogram, QuantileUpperBound) {
  obs::Histogram h;
  for (int i = 0; i < 99; ++i) h.observe(10);   // bucket 4, ub 15
  h.observe(1000);                              // bucket 10, ub 1023
  EXPECT_EQ(h.quantileUpperBound(0.5), 15u);
  EXPECT_EQ(h.quantileUpperBound(0.99), 15u);
  EXPECT_EQ(h.quantileUpperBound(1.0), 1023u);
}

// ---- counters: shard merging and concurrency ------------------------------

TEST(Counter, SumsAcrossShardsExactly) {
  obs::Counter c;
  for (int i = 0; i < 1000; ++i) c.inc();
  c.add(24);
  EXPECT_EQ(c.value(), 1024u);
}

TEST(Counter, ConcurrentIncrementsAreNotLost) {
  obs::Registry reg;
  obs::Counter& c = reg.counter("test.hits");
  obs::Histogram& h = reg.histogram("test.lat");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c, &h] {
      for (int i = 0; i < kPerThread; ++i) {
        c.inc();
        h.observe(static_cast<std::uint64_t>(i % 7));
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 6u);
}

TEST(Gauge, SetAndAdd) {
  obs::Gauge g;
  g.set(2.5);
  g.add(1.25);
  EXPECT_DOUBLE_EQ(g.value(), 3.75);
}

TEST(ScopedTimer, ObservesOnDestruction) {
  obs::Histogram h;
  { obs::ScopedTimer t(&h); }
  EXPECT_EQ(h.count(), 1u);
  { obs::ScopedTimer t(nullptr); }  // null histogram: no-op, no crash
}

// ---- registry + snapshot ---------------------------------------------------

TEST(Registry, HandlesAreStableAndNamed) {
  obs::Registry reg;
  obs::Counter& a = reg.counter("x");
  obs::Counter& b = reg.counter("x");
  EXPECT_EQ(&a, &b);  // same name -> same handle
  a.add(3);
  reg.gauge("g").set(1.5);
  reg.histogram("h").observe(42);

  obs::Snapshot s = reg.snapshot();
  EXPECT_TRUE(s.has("x"));
  EXPECT_TRUE(s.has("g"));
  EXPECT_TRUE(s.has("h"));
  EXPECT_FALSE(s.has("absent"));
  EXPECT_EQ(s.counter("x"), 3u);
  EXPECT_DOUBLE_EQ(s.gauge("g"), 1.5);
  ASSERT_EQ(s.histograms.size(), 1u);
  EXPECT_EQ(s.histograms[0].count, 1u);
  EXPECT_EQ(s.histograms[0].sum, 42u);
}

TEST(Snapshot, JsonRoundTripsThroughParser) {
  obs::Registry reg;
  reg.counter("runs").add(7);
  reg.gauge("rate").set(123.456);
  reg.histogram("steps").observe(10);
  reg.histogram("steps").observe(100);

  obs::JsonValue doc = obs::parseJson(reg.snapshot().toJson());
  ASSERT_TRUE(doc.isObject());
  const obs::JsonValue* runs = doc.at("counters.runs");
  ASSERT_NE(runs, nullptr);
  EXPECT_DOUBLE_EQ(runs->number, 7.0);
  const obs::JsonValue* rate = doc.at("gauges.rate");
  ASSERT_NE(rate, nullptr);
  EXPECT_NEAR(rate->number, 123.456, 1e-9);
  const obs::JsonValue* steps = doc.at("histograms.steps");
  ASSERT_NE(steps, nullptr);
  EXPECT_DOUBLE_EQ(steps->get("count")->number, 2.0);
  EXPECT_DOUBLE_EQ(steps->get("sum")->number, 110.0);
  ASSERT_TRUE(steps->get("buckets")->isArray());
  EXPECT_EQ(steps->get("buckets")->array.size(), 2u);
}

// ---- JSON writer/parser pair ----------------------------------------------

TEST(Json, WriterEscapesAndParserAccepts) {
  obs::JsonWriter w;
  w.beginObject();
  w.field("quote\"slash\\", std::string("a\"b"));
  w.field("n", 42);
  w.field("f", 1.5);
  w.field("b", true);
  w.key("arr");
  w.beginArray();
  w.value(1);
  w.value("two");
  w.endArray();
  w.endObject();

  obs::JsonValue doc = obs::parseJson(w.str());
  EXPECT_EQ(doc.get("quote\"slash\\")->string, "a\"b");
  EXPECT_DOUBLE_EQ(doc.get("n")->number, 42.0);
  EXPECT_TRUE(doc.get("b")->boolean);
  ASSERT_TRUE(doc.get("arr")->isArray());
  EXPECT_EQ(doc.get("arr")->array[1].string, "two");
}

TEST(Json, ParserRejectsGarbage) {
  EXPECT_THROW(obs::parseJson("{"), confail::UsageError);
  EXPECT_THROW(obs::parseJson("[1,]"), confail::UsageError);
  EXPECT_THROW(obs::parseJson("{\"a\": 1} trailing"), confail::UsageError);
}

// ---- trace exporters -------------------------------------------------------

namespace {

// A hand-built two-thread trace with one full lock/wait/notify cycle.
ev::Trace demoTrace() {
  ev::Trace t;
  t.nameThread(0, "waiter");
  t.nameThread(1, "notifier");
  t.nameMonitor(0, "mon");
  t.nameMethod(0, "mon.use");
  auto rec = [&t](ev::ThreadId th, ev::EventKind k) {
    ev::Event e;
    e.thread = th;
    e.kind = k;
    e.monitor = 0;
    e.method = 0;
    t.record(e);
  };
  rec(0, ev::EventKind::MethodEnter);
  rec(0, ev::EventKind::LockRequest);
  rec(0, ev::EventKind::LockAcquire);
  rec(0, ev::EventKind::WaitBegin);
  rec(1, ev::EventKind::LockRequest);
  rec(1, ev::EventKind::LockAcquire);
  rec(1, ev::EventKind::NotifyCall);
  rec(1, ev::EventKind::LockRelease);
  rec(0, ev::EventKind::Notified);
  rec(0, ev::EventKind::LockRelease);
  rec(0, ev::EventKind::MethodExit);
  return t;
}

}  // namespace

TEST(TraceExport, ChromeTraceIsValidAndCoversAllThreads) {
  ev::Trace t = demoTrace();
  obs::JsonValue doc = obs::parseJson(obs::toChromeTrace(t));
  const obs::JsonValue* evs = doc.get("traceEvents");
  ASSERT_NE(evs, nullptr);
  ASSERT_TRUE(evs->isArray());

  int named = 0;
  int slicesT0 = 0, slicesT1 = 0;
  bool sawWait = false;
  for (const obs::JsonValue& e : evs->array) {
    const std::string ph = e.get("ph")->string;
    const double tid = e.get("tid")->number;
    if (ph == "M") {
      ++named;
      continue;
    }
    if (ph == "X") {
      (tid == 0.0 ? slicesT0 : slicesT1)++;
      if (e.get("name")->string.rfind("wait", 0) == 0) sawWait = true;
      EXPECT_GE(e.get("dur")->number, 1.0);
    }
  }
  EXPECT_EQ(named, 2);       // both threads get thread_name metadata
  EXPECT_GE(slicesT0, 3);    // method + hold + wait at least
  EXPECT_GE(slicesT1, 1);    // the notifier's hold slice
  EXPECT_TRUE(sawWait);
}

TEST(TraceExport, JsonlOneParseableObjectPerEvent) {
  ev::Trace t = demoTrace();
  const std::string jsonl = obs::toJsonl(t);
  std::size_t lines = 0;
  std::size_t pos = 0;
  while (pos < jsonl.size()) {
    std::size_t nl = jsonl.find('\n', pos);
    if (nl == std::string::npos) nl = jsonl.size();
    const std::string line = jsonl.substr(pos, nl - pos);
    if (!line.empty()) {
      obs::JsonValue e = obs::parseJson(line);
      EXPECT_TRUE(e.isObject());
      EXPECT_NE(e.get("kind"), nullptr);
      EXPECT_NE(e.get("seq"), nullptr);
      ++lines;
    }
    pos = nl + 1;
  }
  EXPECT_EQ(lines, t.size());
}
