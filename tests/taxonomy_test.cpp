// Unit tests for the taxonomy: Table 1 data integrity, the finding -> class
// mapping, run-outcome classification, and completion-time classification
// end-to-end against seeded ProducerConsumer mutants.
#include <gtest/gtest.h>

#include "confail/clock/abstract_clock.hpp"
#include "confail/components/producer_consumer.hpp"
#include "confail/conan/test_driver.hpp"
#include "confail/detect/lockset.hpp"
#include "confail/detect/unnecessary_sync.hpp"
#include "confail/detect/wait_notify.hpp"
#include "confail/events/trace.hpp"
#include "confail/monitor/runtime.hpp"
#include "confail/sched/virtual_scheduler.hpp"
#include "confail/taxonomy/classifier.hpp"
#include "confail/taxonomy/table1.hpp"
#include "confail/taxonomy/taxonomy.hpp"

namespace detect = confail::detect;
namespace ev = confail::events;
namespace sched = confail::sched;
namespace tax = confail::taxonomy;
using confail::clock::AbstractClock;
using confail::components::ProducerConsumer;
using confail::conan::Call;
using confail::conan::TestDriver;
using confail::monitor::Runtime;
using tax::Classifier;
using tax::FailureClass;

TEST(Taxonomy, TenClassesInTableOrder) {
  const auto& all = tax::allFailureClasses();
  ASSERT_EQ(all.size(), tax::kFailureClassCount);
  EXPECT_EQ(all.front(), FailureClass::FF_T1);
  EXPECT_EQ(all.back(), FailureClass::EF_T5);
  // Alternating FF/EF per transition.
  for (std::size_t i = 0; i < all.size(); ++i) {
    EXPECT_EQ(tax::deviationOf(all[i]),
              i % 2 == 0 ? tax::Deviation::FailureToFire
                         : tax::Deviation::ErroneousFiring);
    EXPECT_EQ(static_cast<int>(tax::transitionOf(all[i])),
              static_cast<int>(i / 2));
  }
}

TEST(Taxonomy, NamesAreStable) {
  EXPECT_STREQ(tax::failureClassName(FailureClass::FF_T1), "FF-T1");
  EXPECT_STREQ(tax::failureClassName(FailureClass::EF_T5), "EF-T5");
  EXPECT_STREQ(tax::transitionName(tax::Transition::T3), "T3");
  EXPECT_STREQ(tax::deviationName(tax::Deviation::FailureToFire),
               "failure to fire");
}

TEST(Taxonomy, EfT2IsTheOnlyInapplicableClass) {
  for (FailureClass c : tax::allFailureClasses()) {
    EXPECT_EQ(tax::info(c).applicable, c != FailureClass::EF_T2)
        << tax::failureClassName(c);
  }
}

TEST(Taxonomy, Table1TextMatchesThePaperKeyPhrases) {
  EXPECT_NE(tax::info(FailureClass::FF_T1).consequences.find("race condition"),
            std::string::npos);
  EXPECT_NE(tax::info(FailureClass::EF_T1).consequences.find("Unnecessary"),
            std::string::npos);
  EXPECT_NE(tax::info(FailureClass::FF_T2).consequences.find("permanently"),
            std::string::npos);
  EXPECT_NE(tax::info(FailureClass::FF_T3).testingNotes.find("completion"),
            std::string::npos);
  EXPECT_NE(tax::info(FailureClass::EF_T5).consequences.find("prematurely"),
            std::string::npos);
}

TEST(Taxonomy, TransitionDescriptionsMentionPlaces) {
  EXPECT_NE(std::string(tax::transitionDescription(tax::Transition::T2))
                .find("B + E -> C"),
            std::string::npos);
  EXPECT_NE(std::string(tax::transitionDescription(tax::Transition::T5))
                .find("dashed"),
            std::string::npos);
}

TEST(Table1, RenderContainsEveryClassRow) {
  std::string t = tax::renderTable1();
  for (FailureClass c : tax::allFailureClasses()) {
    EXPECT_NE(t.find(tax::failureClassName(c)), std::string::npos)
        << tax::failureClassName(c);
  }
  EXPECT_NE(t.find("Testing Notes"), std::string::npos);
  EXPECT_NE(t.find("Not applicable"), std::string::npos);
}

TEST(Table1, ExtendedRenderIncludesExtraColumn) {
  std::map<FailureClass, std::string> extra;
  extra[FailureClass::FF_T1] = "DETECTED by lockset";
  std::string t = tax::renderTable1With("Detected", extra);
  EXPECT_NE(t.find("Detected"), std::string::npos);
  EXPECT_NE(t.find("DETECTED by lockset"), std::string::npos);
}

TEST(Classifier, FindingKindMapping) {
  using detect::FindingKind;
  auto expectMaps = [](FindingKind k, FailureClass c) {
    auto v = Classifier::classesOf(k);
    EXPECT_FALSE(v.empty());
    EXPECT_EQ(v.front(), c);
  };
  expectMaps(FindingKind::DataRace, FailureClass::FF_T1);
  expectMaps(FindingKind::UnnecessarySync, FailureClass::EF_T1);
  expectMaps(FindingKind::Starvation, FailureClass::FF_T2);
  expectMaps(FindingKind::WaitingForever, FailureClass::FF_T5);
  expectMaps(FindingKind::LostNotify, FailureClass::FF_T5);
  expectMaps(FindingKind::GuardNotRechecked, FailureClass::EF_T5);
  expectMaps(FindingKind::EarlyRelease, FailureClass::EF_T4);
  expectMaps(FindingKind::LockHeldForever, FailureClass::FF_T4);
  // Deadlock cycles evidence both FF-T2 and FF-T4.
  auto dc = Classifier::classesOf(FindingKind::DeadlockCycle);
  ASSERT_EQ(dc.size(), 2u);
}

namespace {

struct Harness {
  ev::Trace trace;
  sched::RoundRobinStrategy strategy;
  sched::VirtualScheduler sched{strategy};
  Runtime rt{trace, sched, 1};
  AbstractClock clk{rt};
  TestDriver driver{rt, clk};
};

}  // namespace

TEST(Classifier, SkipNotifyMutantClassifiedAsFFT5) {
  Harness h;
  ProducerConsumer::Faults f;
  f.skipNotify = true;
  ProducerConsumer pc(h.rt, f);

  Call r;
  r.thread = "consumer";
  r.startTick = 1;
  r.label = "receive()";
  r.action = [&pc]() -> std::int64_t { return pc.receive(); };
  r.completionWindow = {{2, 2}};
  r.expectWait = true;
  h.driver.add(r);
  h.driver.addVoid("producer", 2, "send(x)", [&pc] { pc.send("x"); });

  auto res = h.driver.execute();
  detect::WaitNotifyAnalyzer wn;
  auto report = Classifier::classifyAll(wn.analyze(h.trace), res.run, res,
                                        h.trace);
  EXPECT_TRUE(report.has(FailureClass::FF_T5)) << report.describe();
  EXPECT_FALSE(report.has(FailureClass::FF_T1));
}

TEST(Classifier, SkipWaitMutantClassifiedAsFFT3) {
  Harness h;
  ProducerConsumer::Faults f;
  f.skipWaitReceive = true;
  ProducerConsumer pc(h.rt, f);

  Call r;
  r.thread = "consumer";
  r.startTick = 1;
  r.label = "receive()";
  r.action = [&pc]() -> std::int64_t { return pc.receive(); };
  r.completionWindow = {{3, 3}};  // should complete only after the send
  r.expectedValue = 'x';
  r.expectWait = true;
  h.driver.add(r);
  h.driver.addVoid("producer", 3, "send(x)", [&pc] { pc.send("x"); });

  auto res = h.driver.execute();
  EXPECT_FALSE(res.allPassed());
  auto report = Classifier::classifyAll({}, res.run, res, h.trace);
  EXPECT_TRUE(report.has(FailureClass::FF_T3)) << report.describe();
}

TEST(Classifier, ErroneousWaitMutantClassifiedAsEFT3) {
  Harness h;
  ProducerConsumer::Faults f;
  f.erroneousWaitSend = true;
  ProducerConsumer pc(h.rt, f);

  // A single send on an empty buffer should complete immediately; the
  // mutant waits and (with no other thread) hangs forever.
  Call s;
  s.thread = "producer";
  s.startTick = 1;
  s.label = "send(x)";
  s.action = [&pc]() -> std::int64_t {
    pc.send("x");
    return 0;
  };
  s.completionWindow = {{1, 1}};
  s.expectWait = false;
  h.driver.add(s);

  auto res = h.driver.execute();
  EXPECT_EQ(res.run.outcome, sched::Outcome::Deadlock);
  auto report = Classifier::classifyAll({}, res.run, res, h.trace);
  EXPECT_TRUE(report.has(FailureClass::EF_T3)) << report.describe();
}

TEST(Classifier, HoldLockForeverMutantClassifiedAsFFT4) {
  Harness h;
  ProducerConsumer::Faults f;
  f.holdLockForever = true;
  ProducerConsumer pc(h.rt, f);

  h.driver.addVoid("producer", 1, "send(x)", [&pc] { pc.send("x"); });
  Call r;
  r.thread = "consumer";
  r.startTick = 2;
  r.label = "receive()";
  r.action = [&pc]() -> std::int64_t { return pc.receive(); };
  r.completionWindow = {{2, 2}};
  h.driver.add(r);

  auto res = h.driver.execute();
  EXPECT_EQ(res.run.outcome, sched::Outcome::StepLimit);
  auto report = Classifier::classifyAll({}, res.run, res, h.trace);
  EXPECT_TRUE(report.has(FailureClass::FF_T4)) << report.describe();
}

TEST(Classifier, DeadlockBlockKindsSplitFFT5AndFFT2) {
  Harness h;
  confail::monitor::Monitor m(h.rt, "m");
  h.rt.spawn("waiter", [&] {
    confail::monitor::Synchronized sync(m);
    m.wait();
  });
  h.rt.spawn("blocked", [&] {
    for (int k = 0; k < 3; ++k) h.rt.schedulePoint();
    m.lock();  // the waiter released it... then waits forever; this thread
               // acquires fine.  Acquire twice via a second monitor holder:
    m.unlock();
  });
  auto run = h.sched.run();
  // waiter: CondWait blocked forever -> FF-T5.
  ASSERT_EQ(run.outcome, sched::Outcome::Deadlock);
  tax::FailureReport report;
  Classifier::addRunOutcome(report, run, h.trace);
  EXPECT_TRUE(report.has(FailureClass::FF_T5));
}

TEST(Classifier, ValueCorruptionClassifiedAsFFT1) {
  Harness h;
  ProducerConsumer pc(h.rt);
  h.driver.addVoid("producer", 1, "send(a)", [&pc] { pc.send("a"); });
  Call r;
  r.thread = "consumer";
  r.startTick = 2;
  r.label = "receive()";
  r.action = [&pc]() -> std::int64_t { return pc.receive(); };
  r.expectedValue = 'z';  // wrong on purpose: models corrupted state
  h.driver.add(r);
  auto res = h.driver.execute();
  auto report = Classifier::classifyAll({}, res.run, res, h.trace);
  EXPECT_TRUE(report.has(FailureClass::FF_T1));
}

TEST(Classifier, CleanRunProducesEmptyReport) {
  Harness h;
  ProducerConsumer pc(h.rt);
  h.driver.addVoid("producer", 1, "send(a)", [&pc] { pc.send("a"); });
  Call r;
  r.thread = "consumer";
  r.startTick = 2;
  r.label = "receive()";
  r.action = [&pc]() -> std::int64_t { return pc.receive(); };
  r.expectedValue = 'a';
  r.completionWindow = {{2, 2}};
  h.driver.add(r);
  auto res = h.driver.execute();
  ASSERT_TRUE(res.allPassed()) << res.describe();

  detect::LocksetDetector lockset;
  detect::WaitNotifyAnalyzer wn;
  detect::UnnecessarySyncDetector us;
  std::vector<detect::Finding> all;
  for (detect::Detector* d :
       std::initializer_list<detect::Detector*>{&lockset, &wn, &us}) {
    auto fs = d->analyze(h.trace);
    all.insert(all.end(), fs.begin(), fs.end());
  }
  auto report = Classifier::classifyAll(all, res.run, res, h.trace);
  EXPECT_TRUE(report.failures.empty()) << report.describe();
}

TEST(FailureReport, DescribeAndClasses) {
  tax::FailureReport r;
  r.failures.push_back({FailureClass::FF_T5, "evidence-a", "src-a"});
  r.failures.push_back({FailureClass::FF_T1, "evidence-b", "src-b"});
  r.failures.push_back({FailureClass::FF_T5, "evidence-c", "src-c"});
  auto classes = r.classes();
  ASSERT_EQ(classes.size(), 2u);
  EXPECT_EQ(classes[0], FailureClass::FF_T1);  // Table 1 order
  EXPECT_EQ(classes[1], FailureClass::FF_T5);
  std::string d = r.describe();
  EXPECT_NE(d.find("FF-T5"), std::string::npos);
  EXPECT_NE(d.find("evidence-b"), std::string::npos);
}
