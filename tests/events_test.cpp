// Unit tests for the event/trace layer: kind tables, serialization
// round-trips, projections, sinks, naming.
#include <gtest/gtest.h>

#include "confail/events/event.hpp"
#include "confail/events/trace.hpp"
#include "confail/support/assert.hpp"

namespace ev = confail::events;
using ev::Event;
using ev::EventKind;
using ev::Trace;

TEST(Event, KindNamesRoundTrip) {
  for (int k = 0; k <= static_cast<int>(EventKind::ClockTick); ++k) {
    auto kind = static_cast<EventKind>(k);
    EXPECT_EQ(ev::kindFromName(ev::kindName(kind)), kind);
  }
  EXPECT_THROW(ev::kindFromName("NoSuchKind"), confail::UsageError);
}

TEST(Event, ModelTransitionSubset) {
  EXPECT_TRUE(ev::isModelTransition(EventKind::LockRequest));
  EXPECT_TRUE(ev::isModelTransition(EventKind::LockAcquire));
  EXPECT_TRUE(ev::isModelTransition(EventKind::WaitBegin));
  EXPECT_TRUE(ev::isModelTransition(EventKind::LockRelease));
  EXPECT_TRUE(ev::isModelTransition(EventKind::Notified));
  EXPECT_FALSE(ev::isModelTransition(EventKind::NotifyCall));
  EXPECT_FALSE(ev::isModelTransition(EventKind::Read));
  EXPECT_FALSE(ev::isModelTransition(EventKind::ClockTick));
}

TEST(Event, StringRoundTrip) {
  Event e;
  e.seq = 42;
  e.thread = 3;
  e.kind = EventKind::GuardEval;
  e.monitor = 7;
  e.aux = 99;
  e.method = 2;
  e.flag = true;
  EXPECT_EQ(Event::parse(e.toString()), e);

  Event minimal;
  minimal.kind = EventKind::ThreadStart;
  EXPECT_EQ(Event::parse(minimal.toString()), minimal);
}

TEST(Event, ParseRejectsGarbage) {
  EXPECT_THROW(Event::parse("not an event"), confail::UsageError);
  EXPECT_THROW(Event::parse(""), confail::UsageError);
}

TEST(Trace, AssignsMonotonicSequence) {
  Trace t;
  for (int i = 0; i < 5; ++i) {
    Event e;
    e.kind = EventKind::Read;
    EXPECT_EQ(t.record(e), static_cast<std::uint64_t>(i));
  }
  auto all = t.events();
  ASSERT_EQ(all.size(), 5u);
  for (std::size_t i = 0; i < all.size(); ++i) EXPECT_EQ(all[i].seq, i);
}

TEST(Trace, SinksSeeEveryEventInOrder) {
  struct Counter : ev::EventSink {
    std::vector<std::uint64_t> seqs;
    void onEvent(const Event& e) override { seqs.push_back(e.seq); }
  } sink;
  Trace t;
  t.addSink(&sink);
  for (int i = 0; i < 4; ++i) {
    Event e;
    e.kind = EventKind::Write;
    t.record(e);
  }
  EXPECT_EQ(sink.seqs, (std::vector<std::uint64_t>{0, 1, 2, 3}));
}

TEST(Trace, NamesFallBackToGenerated) {
  Trace t;
  t.nameThread(2, "worker");
  EXPECT_EQ(t.threadName(2), "worker");
  EXPECT_EQ(t.threadName(5), "thread-5");
  EXPECT_EQ(t.monitorName(0), "monitor-0");
  EXPECT_EQ(t.varName(1), "var-1");
  EXPECT_EQ(t.methodName(9), "method-9");
}

TEST(Trace, Projections) {
  Trace t;
  auto push = [&t](ev::ThreadId tid, ev::MonitorId mon) {
    Event e;
    e.thread = tid;
    e.monitor = mon;
    e.kind = EventKind::LockAcquire;
    t.record(e);
  };
  push(0, 10);
  push(1, 10);
  push(0, 11);
  EXPECT_EQ(t.threadProjection(0).size(), 2u);
  EXPECT_EQ(t.threadProjection(1).size(), 1u);
  EXPECT_EQ(t.monitorProjection(10).size(), 2u);
  EXPECT_EQ(t.monitorProjection(11).size(), 1u);
  EXPECT_EQ(t.monitorProjection(99).size(), 0u);
}

TEST(Trace, SerializeDeserializeRoundTrip) {
  Trace t;
  t.nameThread(0, "producer");
  t.nameMonitor(3, "buffer");
  t.nameVar(1, "size");
  t.nameMethod(2, "put");
  for (int i = 0; i < 3; ++i) {
    Event e;
    e.thread = 0;
    e.monitor = 3;
    e.kind = i == 1 ? EventKind::WaitBegin : EventKind::LockAcquire;
    e.aux = static_cast<std::uint64_t>(i);
    t.record(e);
  }
  std::string text = t.serialize();
  Trace u = Trace::deserialize(text);
  EXPECT_EQ(u.events(), t.events());
  EXPECT_EQ(u.threadName(0), "producer");
  EXPECT_EQ(u.monitorName(3), "buffer");
  EXPECT_EQ(u.varName(1), "size");
  EXPECT_EQ(u.methodName(2), "put");
}

TEST(Trace, SerializeGoldenFormat) {
  // The wire format is a contract: saved trace files must stay loadable, so
  // pin the exact bytes — name-table lines first, then one event per line
  // as "seq thread kind monitor aux method flag" with -1 sentinels.
  Trace t;
  t.nameThread(0, "worker");
  t.nameMonitor(2, "shared buffer");  // names may contain spaces
  t.nameMethod(1, "buf.put");
  Event e;
  e.thread = 0;
  e.kind = EventKind::LockAcquire;
  e.monitor = 2;
  e.aux = 7;
  e.method = 1;
  e.flag = true;
  t.record(e);
  Event bare;
  bare.thread = 0;
  bare.kind = EventKind::ThreadEnd;  // no monitor/method: -1 sentinels
  t.record(bare);

  EXPECT_EQ(t.serialize(),
            "#thread 0 worker\n"
            "#monitor 2 shared buffer\n"
            "#method 1 buf.put\n"
            "0 0 LockAcquire 2 7 1 1\n"
            "1 0 ThreadEnd -1 0 -1 0\n");

  // And the golden text loads back to the identical trace, name tables
  // included.
  Trace u = Trace::deserialize(
      "#thread 0 worker\n"
      "#monitor 2 shared buffer\n"
      "#method 1 buf.put\n"
      "0 0 LockAcquire 2 7 1 1\n"
      "1 0 ThreadEnd -1 0 -1 0\n");
  EXPECT_EQ(u.events(), t.events());
  EXPECT_EQ(u.threadName(0), "worker");
  EXPECT_EQ(u.monitorName(2), "shared buffer");
  EXPECT_EQ(u.methodName(1), "buf.put");
  EXPECT_EQ(u.findMethod("buf.put"), 1u);
  EXPECT_EQ(u.findMonitor("shared buffer"), 2u);
  EXPECT_EQ(u.findMethod("absent"), ev::kNoMethod);
  EXPECT_EQ(u.findMonitor("absent"), ev::kNoMonitor);
}

TEST(Trace, MoveConstructorCarriesEventsNamesAndSeq) {
  Trace t;
  t.nameThread(0, "mover");
  Event e;
  e.thread = 0;
  e.kind = EventKind::Read;
  t.record(e);
  const std::string before = t.serialize();

  Trace moved(std::move(t));
  EXPECT_EQ(moved.serialize(), before);
  EXPECT_EQ(moved.threadName(0), "mover");
  // Sequence numbering continues where the source left off.
  Event f;
  f.thread = 0;
  f.kind = EventKind::Write;
  EXPECT_EQ(moved.record(f), 1u);
}

TEST(Trace, ClearKeepsNames) {
  Trace t;
  t.nameThread(0, "keeper");
  Event e;
  e.kind = EventKind::Read;
  t.record(e);
  t.clear();
  EXPECT_EQ(t.size(), 0u);
  EXPECT_EQ(t.threadName(0), "keeper");
  // Sequence restarts.
  EXPECT_EQ(t.record(e), 0u);
}

TEST(Trace, RenderMentionsNames) {
  Trace t;
  t.nameThread(0, "alpha");
  t.nameMonitor(1, "mon");
  Event e;
  e.thread = 0;
  e.monitor = 1;
  e.kind = EventKind::LockRequest;
  t.record(e);
  std::string out;
  t.render([&out](const std::string& line) { out += line + "\n"; });
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("mon"), std::string::npos);
  EXPECT_NE(out.find("LockRequest"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Fuzzed serialization round-trip: random events through serialize/parse.
// ---------------------------------------------------------------------------

#include "confail/support/rng.hpp"

class TraceFuzz : public testing::TestWithParam<std::uint64_t> {};

TEST_P(TraceFuzz, SerializationRoundTripsRandomTraces) {
  confail::Xoshiro256 rng(GetParam());
  Trace t;
  t.nameThread(0, "fuzz-thread");
  t.nameMonitor(1, "fuzz monitor with spaces");
  const int kKinds = static_cast<int>(EventKind::ClockTick) + 1;
  for (int i = 0; i < 300; ++i) {
    Event e;
    e.thread = static_cast<ev::ThreadId>(rng.below(6));
    e.kind = static_cast<EventKind>(rng.below(static_cast<std::uint64_t>(kKinds)));
    e.monitor = rng.chance(0.5) ? static_cast<ev::MonitorId>(rng.below(4))
                                : ev::kNoMonitor;
    e.aux = rng.next();
    e.method = rng.chance(0.5) ? static_cast<ev::MethodId>(rng.below(8))
                               : ev::kNoMethod;
    e.flag = rng.chance(0.5);
    t.record(e);
  }
  Trace u = Trace::deserialize(t.serialize());
  EXPECT_EQ(u.events(), t.events());
  EXPECT_EQ(u.threadName(0), "fuzz-thread");
  EXPECT_EQ(u.monitorName(1), "fuzz monitor with spaces");
  // Double round-trip is a fixpoint.
  EXPECT_EQ(u.serialize(), t.serialize());
}

INSTANTIATE_TEST_SUITE_P(Seeds, TraceFuzz,
                         testing::Values(1ull, 2ull, 3ull, 5ull, 8ull, 13ull),
                         [](const testing::TestParamInfo<std::uint64_t>& pinfo) {
                           return "seed" + std::to_string(pinfo.param);
                         });
