// Unit tests for Concurrency Flow Graphs: Figure-3 construction (exact arc
// set and transition annotations), DOT export, coverage tracking over real
// traces, anomaly detection, and sequence suggestion.
#include <gtest/gtest.h>

#include <set>

#include "confail/cofg/cofg.hpp"
#include "confail/cofg/coverage.hpp"
#include "confail/components/producer_consumer.hpp"
#include "confail/conan/test_driver.hpp"
#include "confail/clock/abstract_clock.hpp"
#include "confail/events/trace.hpp"
#include "confail/monitor/runtime.hpp"
#include "confail/sched/virtual_scheduler.hpp"

namespace cofg = confail::cofg;
namespace ev = confail::events;
namespace sched = confail::sched;
using cofg::Cofg;
using cofg::MethodModel;
using cofg::Node;
using cofg::NodeKind;
using confail::clock::AbstractClock;
using confail::components::ProducerConsumer;
using confail::monitor::Runtime;

namespace {
Node start() { return Node{NodeKind::Start, 0}; }
Node end() { return Node{NodeKind::End, 0}; }
}  // namespace

TEST(Cofg, ReceiveGraphHasExactlyThePapersFiveArcs) {
  Cofg g = Cofg::build(ProducerConsumer::receiveModel());
  ASSERT_EQ(g.arcs().size(), 5u);

  Node wait{NodeKind::Wait, 0};
  Node notifyAll{NodeKind::NotifyAll, 1};

  auto arc = [&](Node s, Node d) {
    std::size_t i = g.findArc(s, d);
    EXPECT_NE(i, Cofg::npos) << s.label() << " -> " << d.label();
    return i;
  };

  // Arc 1: start -> wait, fires T1, T2, T3 (paper item 1).
  EXPECT_EQ(g.arcs()[arc(start(), wait)].transitionString(), "T1, T2, T3");
  // Arc 2: wait -> wait, fires T3, T5, T2, T3 (paper item 2).
  EXPECT_EQ(g.arcs()[arc(wait, wait)].transitionString(), "T3, T5, T2, T3");
  // Arc 3: wait -> notifyAll.  The paper prints "T3, T4, T5"; the derived
  // annotation is T3, T5, T2, T5 (wake + re-acquire; no release happens
  // between a wait and a notifyAll in the same synchronized method).
  // See the erratum note in cofg.hpp.
  EXPECT_EQ(g.arcs()[arc(wait, notifyAll)].transitionString(), "T3, T5, T2, T5");
  // Arc 4: start -> notifyAll, fires T1, T2, T5 (paper item 4).
  EXPECT_EQ(g.arcs()[arc(start(), notifyAll)].transitionString(), "T1, T2, T5");
  // Arc 5: notifyAll -> end, fires T5, T4 (paper item 5).
  EXPECT_EQ(g.arcs()[arc(notifyAll, end())].transitionString(), "T5, T4");
}

TEST(Cofg, SendGraphIsIdenticalInShapeToReceive) {
  // "The CoFG for send is identical to that for receive in this case."
  Cofg r = Cofg::build(ProducerConsumer::receiveModel());
  Cofg s = Cofg::build(ProducerConsumer::sendModel());
  ASSERT_EQ(r.arcs().size(), s.arcs().size());
  for (std::size_t i = 0; i < r.arcs().size(); ++i) {
    EXPECT_EQ(r.arcs()[i].src, s.arcs()[i].src);
    EXPECT_EQ(r.arcs()[i].dst, s.arcs()[i].dst);
    EXPECT_EQ(r.arcs()[i].transitions, s.arcs()[i].transitions);
  }
}

TEST(Cofg, ArcConditionsNameTheGuard) {
  Cofg g = Cofg::build(ProducerConsumer::receiveModel());
  Node wait{NodeKind::Wait, 0};
  const auto& a = g.arcs()[g.findArc(start(), wait)];
  EXPECT_NE(a.condition.find("curPos == 0"), std::string::npos);
  EXPECT_NE(a.condition.find("true on entry"), std::string::npos);
}

TEST(Cofg, UnsynchronizedMethodHasNoLockTransitions) {
  MethodModel m("plain", /*isSynchronized=*/false);
  m.notifyAll();
  Cofg g = Cofg::build(m);
  ASSERT_EQ(g.arcs().size(), 2u);
  EXPECT_EQ(g.arcs()[0].transitionString(), "T5");      // start -> notifyAll
  EXPECT_EQ(g.arcs()[1].transitionString(), "T5");      // notifyAll -> end
}

TEST(Cofg, WaitIfHasNoSelfLoop) {
  MethodModel m("ifGuard");
  m.waitIf("g").notifyAll();
  Cofg g = Cofg::build(m);
  Node wait{NodeKind::Wait, 0};
  EXPECT_EQ(g.findArc(wait, wait), Cofg::npos);
  EXPECT_EQ(g.arcs().size(), 4u);
}

TEST(Cofg, TwoWaitLoopsProduceDistinctSites) {
  MethodModel m("double");
  m.waitLoop("g1").waitLoop("g2").notifyOne();
  Cofg g = Cofg::build(m);
  Node w0{NodeKind::Wait, 0}, w1{NodeKind::Wait, 1};
  EXPECT_NE(g.findArc(start(), w0), Cofg::npos);
  EXPECT_NE(g.findArc(w0, w1), Cofg::npos);
  EXPECT_NE(g.findArc(start(), w1), Cofg::npos);
  EXPECT_NE(g.findArc(w0, w0), Cofg::npos);
  EXPECT_NE(g.findArc(w1, w1), Cofg::npos);
  Node n{NodeKind::Notify, 2};
  EXPECT_NE(g.findArc(w1, n), Cofg::npos);
  EXPECT_NE(g.findArc(n, end()), Cofg::npos);
}

TEST(Cofg, MethodWithNoConcurrencyStatements) {
  MethodModel m("trivial");
  Cofg g = Cofg::build(m);
  ASSERT_EQ(g.arcs().size(), 1u);
  EXPECT_EQ(g.arcs()[0].label(), "start -> end");
  EXPECT_EQ(g.arcs()[0].transitionString(), "T1, T2, T4");
}

TEST(Cofg, DotExportIsWellFormed) {
  Cofg g = Cofg::build(ProducerConsumer::receiveModel());
  std::string dot = g.toDot();
  EXPECT_EQ(dot.find("digraph"), 0u);
  EXPECT_NE(dot.find("\"start\" -> \"wait#0\""), std::string::npos);
  EXPECT_NE(dot.find("T1, T2, T3"), std::string::npos);
  EXPECT_EQ(std::count(dot.begin(), dot.end(), '}'), 1);
}

namespace {

// Run the Section 6 deterministic sequence against the producer-consumer
// and return (trace, receive coverage tracker, method id).
struct CoverageRun {
  ev::Trace trace;
  sched::RoundRobinStrategy strategy;
  sched::VirtualScheduler sched{strategy};
  Runtime rt{trace, sched, 1};
  AbstractClock clk{rt};
};

}  // namespace

TEST(Coverage, FullSequenceCoversAllFiveArcsOfReceive) {
  CoverageRun h;
  ProducerConsumer pc(h.rt);
  confail::conan::TestDriver driver(h.rt, h.clk);

  // Consumer 1 arrives early (start->wait, then wait->notifyAll on wake).
  // Consumers 2 and 3 both wait; producer sends one char, so after one
  // receive completes the other consumer re-waits (wait->wait).
  // A final receive on a non-empty buffer covers start->notifyAll.
  driver.addVoid("c1", 1, "receive", [&pc] { pc.receive(); });
  driver.addVoid("c2", 2, "receive", [&pc] { pc.receive(); });
  driver.addVoid("p", 3, "send(a)", [&pc] { pc.send("a"); });
  driver.addVoid("p", 4, "send(b)", [&pc] { pc.send("b"); });
  driver.addVoid("p", 6, "send(cd)", [&pc] { pc.send("cd"); });
  driver.addVoid("c1", 7, "receive", [&pc] { pc.receive(); });
  driver.addVoid("c1", 8, "receive", [&pc] { pc.receive(); });
  auto res = driver.execute();
  ASSERT_EQ(res.run.outcome, sched::Outcome::Completed) << res.describe();

  Cofg g = Cofg::build(ProducerConsumer::receiveModel());
  cofg::CoverageTracker cov(g, pc.receiveMethodId());
  cov.process(h.trace.events());
  EXPECT_TRUE(cov.anomalies().empty());
  EXPECT_EQ(cov.coveredArcs(), 5u) << cov.report(h.trace);
  EXPECT_DOUBLE_EQ(cov.coverageFraction(), 1.0);
}

TEST(Coverage, HappyPathOnlyLeavesWaitArcsUncovered) {
  CoverageRun h;
  ProducerConsumer pc(h.rt);
  confail::conan::TestDriver driver(h.rt, h.clk);
  // Send first, then receive: the receive never waits.
  driver.addVoid("p", 1, "send(x)", [&pc] { pc.send("x"); });
  driver.addVoid("c", 2, "receive", [&pc] { pc.receive(); });
  auto res = driver.execute();
  ASSERT_EQ(res.run.outcome, sched::Outcome::Completed);

  Cofg g = Cofg::build(ProducerConsumer::receiveModel());
  cofg::CoverageTracker cov(g, pc.receiveMethodId());
  cov.process(h.trace.events());
  EXPECT_EQ(cov.coveredArcs(), 2u);  // start->notifyAll, notifyAll->end
  auto unc = cov.uncoveredArcs();
  EXPECT_EQ(unc.size(), 3u);
  for (std::size_t i : unc) {
    EXPECT_EQ(g.arcs()[i].src.kind == NodeKind::Wait ||
                  g.arcs()[i].dst.kind == NodeKind::Wait,
              true);
  }
}

TEST(Coverage, TraversalCountsAccumulate) {
  CoverageRun h;
  ProducerConsumer pc(h.rt);
  confail::conan::TestDriver driver(h.rt, h.clk);
  for (int i = 0; i < 3; ++i) {
    driver.addVoid("p", static_cast<std::uint64_t>(2 * i + 1), "send",
                   [&pc] { pc.send("x"); });
    driver.addVoid("c", static_cast<std::uint64_t>(2 * i + 2), "receive",
                   [&pc] { pc.receive(); });
  }
  auto res = driver.execute();
  ASSERT_EQ(res.run.outcome, sched::Outcome::Completed);

  Cofg g = Cofg::build(ProducerConsumer::receiveModel());
  cofg::CoverageTracker cov(g, pc.receiveMethodId());
  cov.process(h.trace.events());
  Node notifyAll{NodeKind::NotifyAll, 1};
  std::size_t arcStartNotify = g.findArc(start(), notifyAll);
  EXPECT_EQ(cov.hits()[arcStartNotify], 3u);
}

TEST(Coverage, SuggestionsNameUncoveredArcsAndConditions) {
  Cofg g = Cofg::build(ProducerConsumer::receiveModel());
  cofg::CoverageTracker cov(g, 0);
  // Nothing processed: everything uncovered.
  std::string s = cov.suggestSequences();
  EXPECT_NE(s.find("start -> wait#0"), std::string::npos);
  EXPECT_NE(s.find("curPos == 0"), std::string::npos);
  EXPECT_NE(s.find("drive the method through:"), std::string::npos);
}

TEST(Coverage, SuggestionsEmptyWhenFullyCovered) {
  CoverageRun h;
  ProducerConsumer pc(h.rt);
  confail::conan::TestDriver driver(h.rt, h.clk);
  driver.addVoid("c1", 1, "receive", [&pc] { pc.receive(); });
  driver.addVoid("c2", 2, "receive", [&pc] { pc.receive(); });
  driver.addVoid("p", 3, "send(a)", [&pc] { pc.send("a"); });
  driver.addVoid("p", 4, "send(b)", [&pc] { pc.send("b"); });
  driver.addVoid("p", 6, "send(cd)", [&pc] { pc.send("cd"); });
  driver.addVoid("c1", 7, "receive", [&pc] { pc.receive(); });
  driver.addVoid("c1", 8, "receive", [&pc] { pc.receive(); });
  auto res = driver.execute();
  ASSERT_EQ(res.run.outcome, sched::Outcome::Completed);
  Cofg g = Cofg::build(ProducerConsumer::receiveModel());
  cofg::CoverageTracker cov(g, pc.receiveMethodId());
  cov.process(h.trace.events());
  EXPECT_NE(cov.suggestSequences().find("all arcs covered"), std::string::npos);
}

TEST(Coverage, ReportListsArcsWithMarks) {
  CoverageRun h;
  ProducerConsumer pc(h.rt);
  confail::conan::TestDriver driver(h.rt, h.clk);
  driver.addVoid("p", 1, "send", [&pc] { pc.send("x"); });
  driver.addVoid("c", 2, "receive", [&pc] { pc.receive(); });
  auto res = driver.execute();
  ASSERT_EQ(res.run.outcome, sched::Outcome::Completed);
  Cofg g = Cofg::build(ProducerConsumer::receiveModel());
  cofg::CoverageTracker cov(g, pc.receiveMethodId());
  cov.process(h.trace.events());
  std::string rep = cov.report(h.trace);
  EXPECT_NE(rep.find("2/5"), std::string::npos);
  EXPECT_NE(rep.find("[x] start -> notifyAll#1"), std::string::npos);
  EXPECT_NE(rep.find("[ ] start -> wait#0"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Mutant CoFGs: the graph of what a fault plan actually implements differs
// structurally from the correct Figure-3 graph.
// ---------------------------------------------------------------------------

TEST(MutantCofg, IfGuardLosesTheWaitSelfLoop) {
  ProducerConsumer::Faults f;
  f.ifInsteadOfWhile = true;
  Cofg mutant = Cofg::build(ProducerConsumer::receiveModelFor(f));
  Cofg correct = Cofg::build(ProducerConsumer::receiveModel());
  Node wait{NodeKind::Wait, 0};
  EXPECT_NE(correct.findArc(wait, wait), Cofg::npos);
  EXPECT_EQ(mutant.findArc(wait, wait), Cofg::npos);
  EXPECT_EQ(mutant.arcs().size(), correct.arcs().size() - 1);
}

TEST(MutantCofg, SkipWaitLosesTheWaitNodeEntirely) {
  ProducerConsumer::Faults f;
  f.skipWaitReceive = true;
  Cofg mutant = Cofg::build(ProducerConsumer::receiveModelFor(f));
  for (const auto& arc : mutant.arcs()) {
    EXPECT_NE(arc.src.kind, NodeKind::Wait);
    EXPECT_NE(arc.dst.kind, NodeKind::Wait);
  }
  EXPECT_EQ(mutant.arcs().size(), 2u);  // start->notifyAll, notifyAll->end
}

TEST(MutantCofg, SkipNotifyLosesTheNotifyNode) {
  ProducerConsumer::Faults f;
  f.skipNotify = true;
  Cofg mutant = Cofg::build(ProducerConsumer::receiveModelFor(f));
  for (const auto& arc : mutant.arcs()) {
    EXPECT_NE(arc.src.kind, NodeKind::NotifyAll);
    EXPECT_NE(arc.dst.kind, NodeKind::NotifyAll);
  }
}

TEST(MutantCofg, NotifyOneMutantUsesNotifyNode) {
  ProducerConsumer::Faults f;
  f.notifyOneOnly = true;
  Cofg mutant = Cofg::build(ProducerConsumer::receiveModelFor(f));
  bool hasNotifyOne = false;
  for (const auto& arc : mutant.arcs()) {
    hasNotifyOne = hasNotifyOne || arc.dst.kind == NodeKind::Notify;
  }
  EXPECT_TRUE(hasNotifyOne);
}

TEST(MutantCofg, MutantTraceCoversMutantGraphCleanly) {
  // The if-mutant's execution, tracked against the MUTANT's own CoFG,
  // produces no anomalies — confirming the mutant model describes the
  // mutant code (and the divergence shows only against the correct model).
  CoverageRun h;
  ProducerConsumer::Faults f;
  f.ifInsteadOfWhile = true;
  ProducerConsumer pc(h.rt, f);
  confail::conan::TestDriver driver(h.rt, h.clk);
  driver.addVoid("c", 1, "receive", [&pc] { (void)pc.receive(); });
  driver.addVoid("p", 3, "send(x)", [&pc] { pc.send("x"); });
  auto res = driver.execute();
  ASSERT_EQ(res.run.outcome, sched::Outcome::Completed);

  Cofg mutantGraph = Cofg::build(ProducerConsumer::receiveModelFor(f));
  cofg::CoverageTracker cov(mutantGraph, pc.receiveMethodId());
  cov.process(h.trace.events());
  EXPECT_TRUE(cov.anomalies().empty());
  EXPECT_GE(cov.coveredArcs(), 3u);
}

TEST(Coverage, OnlineSinkMeasuresDuringExecution) {
  // Future-work item 3: coverage analysis *during* testing — the tracker
  // registered as a live sink sees arcs as they are traversed.
  CoverageRun h;
  ProducerConsumer pc(h.rt);
  Cofg g = Cofg::build(ProducerConsumer::receiveModel());
  cofg::CoverageTracker live(g, pc.receiveMethodId());
  h.trace.addSink(&live);

  confail::conan::TestDriver driver(h.rt, h.clk);
  driver.addVoid("p", 1, "send", [&pc] { pc.send("x"); });
  driver.addVoid("c", 2, "receive", [&pc] { (void)pc.receive(); });
  auto res = driver.execute();
  ASSERT_EQ(res.run.outcome, sched::Outcome::Completed);

  // Live tracker agrees exactly with an offline replay of the same trace.
  cofg::CoverageTracker offline(g, pc.receiveMethodId());
  offline.process(h.trace.events());
  EXPECT_EQ(live.hits(), offline.hits());
  EXPECT_EQ(live.coveredArcs(), 2u);
}

TEST(Cofg, OptionalNotifyKeepsBypassArcs) {
  MethodModel m("conditional");
  m.waitLoop("g").notifyAllOptional("cond");
  Cofg g = Cofg::build(m);
  Node wait{NodeKind::Wait, 0};
  Node notifyAll{NodeKind::NotifyAll, 1};
  // Both the notify path and the bypass path must exist.
  EXPECT_NE(g.findArc(start(), notifyAll), Cofg::npos);
  EXPECT_NE(g.findArc(notifyAll, end()), Cofg::npos);
  EXPECT_NE(g.findArc(start(), end()), Cofg::npos);
  EXPECT_NE(g.findArc(wait, end()), Cofg::npos);
  EXPECT_NE(g.findArc(wait, notifyAll), Cofg::npos);
  EXPECT_EQ(g.arcs().size(), 7u);
  // The bypass condition names the notify's guard.
  const auto& bypass = g.arcs()[g.findArc(start(), end())];
  EXPECT_NE(bypass.condition.find("not (cond)"), std::string::npos);
}

TEST(Cofg, MandatoryNotifyHasNoBypass) {
  MethodModel m("unconditional");
  m.waitLoop("g").notifyAll();
  Cofg g = Cofg::build(m);
  EXPECT_EQ(g.findArc(start(), end()), Cofg::npos);
  Node wait{NodeKind::Wait, 0};
  EXPECT_EQ(g.findArc(wait, end()), Cofg::npos);
}
