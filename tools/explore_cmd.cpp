// `confail explore`: front end for the parallel schedule explorer.  The
// heavy lifting — program wiring, injection, capture, summary assembly —
// lives in inject::ExploreConfig; this file is flag parsing and output.
//
// Exit status follows cli.hpp: 0 when every run completed cleanly, 1 when
// the exploration surfaced failures (deadlocks, step-limited runs,
// exceptions), 2 on usage errors, 3 on internal errors.
#include <cstdio>
#include <cstring>
#include <string>

#include "cli.hpp"
#include "confail/components/scenario_registry.hpp"
#include "confail/inject/explore_config.hpp"
#include "confail/inject/job_spec.hpp"
#include "confail/obs/metrics.hpp"
#include "confail/obs/summary.hpp"
#include "confail/obs/trace_export.hpp"

namespace confail::cli {

namespace scenarios = confail::components::scenarios;
namespace sched = confail::sched;

namespace {

int usage(const char* prog) {
  std::fprintf(stderr,
               "usage: %s --scenario <name> [--workers N] "
               "[--prune] [--reduction none|sleep|dpor]\n"
               "               [--sleep-sets] [--max-runs N] [--max-depth N] "
               "[--max-steps N] [--json]\n"
               "               [--incremental | --no-incremental] "
               "[--snapshot-budget-mb N]\n"
               "               [--metrics-out FILE] "
               "[--chrome-trace FILE] [--jsonl-out FILE] [--progress]\n\n"
               "--sleep-sets is shorthand for --reduction sleep.\n"
               "--jsonl-out captures one run as JSONL events ('-' for "
               "stdout) — pipe it\nstraight into the streaming analyzer:\n"
               "  confail explore --scenario S --jsonl-out - | "
               "confail ingest --from jsonl -\n"
               "--incremental (default) resumes each branch from a "
               "copy-on-write snapshot\n"
               "of its parent's state; --no-incremental replays every "
               "prefix from the root\n"
               "(kept for differential testing).\n\n"
               "scenarios:\n",
               prog);
  for (const scenarios::NamedScenario& s : scenarios::registry()) {
    std::fprintf(stderr, "  %-12s %s\n", s.name.c_str(), s.blurb.c_str());
  }
  return 2;
}

}  // namespace

int cmdExplore(const char* prog, int argc, char** argv) {
  const scenarios::NamedScenario* scenario = nullptr;
  sched::ExhaustiveExplorer::Options eo;
  eo.maxRuns = 10000;
  eo.maxSteps = 20000;
  bool json = false;
  bool progress = false;
  std::string metricsOut;
  std::string chromeTrace;
  std::string jsonlOut;

  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* { return flagValue(i, argc, argv); };
    try {
      if (arg == "--scenario") {
        const char* v = next();
        if (v == nullptr) return usage(prog);
        scenario = scenarios::find(v);
        if (scenario == nullptr) {
          std::fprintf(stderr, "%s: unknown scenario '%s'\n", prog, v);
          return usage(prog);
        }
      } else if (arg == "--workers") {
        const char* v = next();
        if (v == nullptr) return usage(prog);
        eo.workers = std::stoul(v);
      } else if (arg == "--max-runs") {
        const char* v = next();
        if (v == nullptr) return usage(prog);
        eo.maxRuns = std::stoull(v);
      } else if (arg == "--max-depth") {
        const char* v = next();
        if (v == nullptr) return usage(prog);
        eo.maxBranchDepth = std::stoull(v);
      } else if (arg == "--max-steps") {
        const char* v = next();
        if (v == nullptr) return usage(prog);
        eo.maxSteps = std::stoull(v);
      } else if (arg == "--prune") {
        eo.fingerprintPruning = true;
      } else if (arg == "--incremental") {
        eo.incremental = true;
      } else if (arg == "--no-incremental") {
        eo.incremental = false;
      } else if (arg == "--snapshot-budget-mb") {
        const char* v = next();
        if (v == nullptr) return usage(prog);
        eo.snapshotBudgetBytes = std::stoull(v) * 1024 * 1024;
      } else if (arg == "--sleep-sets") {
        eo.reduction = sched::ExhaustiveExplorer::Reduction::Sleep;
      } else if (arg == "--reduction" || arg.rfind("--reduction=", 0) == 0) {
        std::string v;
        if (arg == "--reduction") {
          const char* n = next();
          if (n == nullptr) return usage(prog);
          v = n;
        } else {
          v = arg.substr(std::strlen("--reduction="));
        }
        if (!inject::parseReduction(v, eo.reduction)) {
          std::fprintf(stderr, "%s: unknown reduction '%s'\n", prog,
                       v.c_str());
          return usage(prog);
        }
      } else if (arg == "--json") {
        json = true;
      } else if (arg == "--metrics-out") {
        const char* v = next();
        if (v == nullptr) return usage(prog);
        metricsOut = v;
      } else if (arg == "--chrome-trace") {
        const char* v = next();
        if (v == nullptr) return usage(prog);
        chromeTrace = v;
      } else if (arg == "--jsonl-out") {
        const char* v = next();
        if (v == nullptr) return usage(prog);
        jsonlOut = v;
      } else if (arg == "--progress") {
        progress = true;
      } else {
        std::fprintf(stderr, "%s: unknown option '%s'\n", prog, arg.c_str());
        return usage(prog);
      }
    } catch (const std::exception&) {
      std::fprintf(stderr, "%s: bad value for %s\n", prog, arg.c_str());
      return usage(prog);
    }
  }
  if (scenario == nullptr) return usage(prog);

  const bool instrument =
      !metricsOut.empty() || !chromeTrace.empty() || !jsonlOut.empty() ||
      progress;
  obs::Registry metrics;
  inject::ExploreConfig cfg;
  cfg.scenario(*scenario).explorer(eo);
  if (instrument) cfg.metrics(&metrics);
  if (progress) cfg.stderrProgress();

  inject::ExploreConfig::Outcome outcome;
  try {
    outcome = cfg.explore();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s: %s\n", prog, e.what());
    return 3;
  }
  const sched::ExhaustiveExplorer::Stats& stats = outcome.stats;
  const int verdict =
      stats.deadlocks + stats.stepLimited + stats.exceptions > 0 ? 1 : 0;

  // One captured run feeds the Chrome/JSONL exports and the CoFG coverage
  // gauges.
  events::Trace captured;
  if (!chromeTrace.empty() || !jsonlOut.empty() || !metricsOut.empty()) {
    try {
      cfg.capture(captured, metrics);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s: capture run failed: %s\n", prog, e.what());
      return 3;
    }
  }
  if (!chromeTrace.empty() &&
      !obs::writeChromeTraceFile(captured, chromeTrace)) {
    std::fprintf(stderr, "%s: cannot write %s\n", prog, chromeTrace.c_str());
    return 3;
  }
  if (!jsonlOut.empty()) {
    if (jsonlOut == "-") {
      std::fputs(obs::toJsonl(captured).c_str(), stdout);
      // Events went to stdout; the summary must not interleave with them.
      return verdict;
    }
    if (!obs::writeJsonlFile(captured, jsonlOut)) {
      std::fprintf(stderr, "%s: cannot write %s\n", prog, jsonlOut.c_str());
      return 3;
    }
  }
  if (!metricsOut.empty() && !metrics.snapshot().writeFile(metricsOut)) {
    std::fprintf(stderr, "%s: cannot write %s\n", prog, metricsOut.c_str());
    return 3;
  }

  obs::ExploreSummary summary = outcome.summary();
  if (instrument) summary.addHistogramPercentiles(metrics.snapshot());
  if (json) {
    std::printf("%s\n", summary.toJson().c_str());
  } else {
    std::fputs(summary.human().c_str(), stdout);
    std::printf("EXPLORE DONE\n");
  }
  return verdict;
}

}  // namespace confail::cli
