// confail_explore: forwarding shim kept for script compatibility.  The
// implementation moved to the unified CLI (`confail explore`); see
// explore_cmd.cpp.  Flags and output are unchanged.
#include "cli.hpp"

int main(int argc, char** argv) {
  return confail::cli::cmdExplore("confail_explore", argc - 1, argv + 1);
}
