// confail_explore: command-line front end for the parallel schedule
// explorer.  Runs one of the canonical scenarios (components/scenarios.hpp)
// through ExhaustiveExplorer and reports coverage, failure counts, and the
// first (lexicographically smallest) failing schedule.
//
// Usage:
//   confail_explore --scenario fig2|ff_t5|ff_t5_small|lock_order|disjoint
//                   [--workers N]      worker threads (0 = hardware)
//                   [--prune]          (depth, fingerprint) state dedup
//                   [--sleep-sets]     adjacent-step independence skip
//                   [--max-runs N]     run budget           (default 10000)
//                   [--max-depth N]    branching depth bound (default none)
//                   [--max-steps N]    per-run step bound   (default 20000)
//                   [--json]           machine-readable output on stdout
//
// Exit status: 0 on a clean exploration (including one that finds
// failures — finding bugs is the tool working), 1 on an internal error,
// 2 on a usage error.
#include <cstdio>
#include <cstring>
#include <set>
#include <string>
#include <vector>

#include "confail/components/scenarios.hpp"
#include "confail/sched/explorer.hpp"

namespace sched = confail::sched;
namespace scenarios = confail::components::scenarios;

namespace {

using Scenario = void (*)(sched::VirtualScheduler&);

struct NamedScenario {
  const char* name;
  Scenario fn;
  const char* blurb;
};

constexpr NamedScenario kScenarios[] = {
    {"fig2", scenarios::figure2,
     "Figure 2 producer/consumer, correct guards (no failure expected)"},
    {"ff_t5", scenarios::ffT5Notify,
     "FF-T5: notify() where notifyAll() is required (2 items/thread)"},
    {"ff_t5_small", scenarios::ffT5Small,
     "FF-T5 variant, 1 item/thread (small exhaustible tree)"},
    {"lock_order", scenarios::lockOrder,
     "two monitors acquired in opposite orders (deadlock)"},
    {"disjoint", scenarios::disjointCounters,
     "two threads on disjoint shared vars (sleep-set showcase)"},
};

int usage() {
  std::fprintf(stderr,
               "usage: confail_explore --scenario <name> [--workers N] "
               "[--prune] [--sleep-sets]\n"
               "                       [--max-runs N] [--max-depth N] "
               "[--max-steps N] [--json]\n\nscenarios:\n");
  for (const NamedScenario& s : kScenarios) {
    std::fprintf(stderr, "  %-12s %s\n", s.name, s.blurb);
  }
  return 2;
}

std::uint64_t deadlockSignature(const sched::RunResult& r) {
  std::uint64_t h = sched::kFpSeed;
  for (const sched::BlockedThreadInfo& b : r.blocked) {
    h = sched::fpMix(h, (static_cast<std::uint64_t>(b.id) << 32) ^
                            static_cast<std::uint64_t>(b.kind));
    h = sched::fpMix(h, b.resource);
  }
  return h;
}

}  // namespace

int main(int argc, char** argv) {
  Scenario scenario = nullptr;
  const char* scenarioName = nullptr;
  sched::ExhaustiveExplorer::Options eo;
  eo.maxRuns = 10000;
  eo.maxSteps = 20000;
  bool json = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return ++i < argc ? argv[i] : nullptr;
    };
    try {
      if (arg == "--scenario") {
        const char* v = next();
        if (v == nullptr) return usage();
        for (const NamedScenario& s : kScenarios) {
          if (std::strcmp(s.name, v) == 0) {
            scenario = s.fn;
            scenarioName = s.name;
          }
        }
        if (scenario == nullptr) {
          std::fprintf(stderr, "confail_explore: unknown scenario '%s'\n", v);
          return usage();
        }
      } else if (arg == "--workers") {
        const char* v = next();
        if (v == nullptr) return usage();
        eo.workers = std::stoul(v);
      } else if (arg == "--max-runs") {
        const char* v = next();
        if (v == nullptr) return usage();
        eo.maxRuns = std::stoull(v);
      } else if (arg == "--max-depth") {
        const char* v = next();
        if (v == nullptr) return usage();
        eo.maxBranchDepth = std::stoull(v);
      } else if (arg == "--max-steps") {
        const char* v = next();
        if (v == nullptr) return usage();
        eo.maxSteps = std::stoull(v);
      } else if (arg == "--prune") {
        eo.fingerprintPruning = true;
      } else if (arg == "--sleep-sets") {
        eo.sleepSets = true;
      } else if (arg == "--json") {
        json = true;
      } else {
        std::fprintf(stderr, "confail_explore: unknown option '%s'\n",
                     arg.c_str());
        return usage();
      }
    } catch (const std::exception&) {
      std::fprintf(stderr, "confail_explore: bad value for %s\n", arg.c_str());
      return usage();
    }
  }
  if (scenario == nullptr) return usage();

  std::set<std::uint64_t> deadlockSigs;
  sched::ExhaustiveExplorer explorer(eo);
  sched::ExhaustiveExplorer::Stats stats;
  try {
    stats = explorer.explore(
        scenario, [&deadlockSigs](const std::vector<sched::ThreadId>&,
                                  const sched::RunResult& r) {
          if (r.outcome == sched::Outcome::Deadlock) {
            deadlockSigs.insert(deadlockSignature(r));
          }
          return true;
        });
  } catch (const std::exception& e) {
    std::fprintf(stderr, "confail_explore: %s\n", e.what());
    return 1;
  }

  if (json) {
    std::printf("{\"scenario\": \"%s\", \"runs\": %llu, \"completed\": %llu, "
                "\"deadlocks\": %llu, \"distinct_deadlock_states\": %zu, "
                "\"step_limited\": %llu, \"exceptions\": %llu, "
                "\"deduped_states\": %llu, \"pruned_branches\": %llu, "
                "\"exhausted\": %s, \"first_failure\": [",
                scenarioName, static_cast<unsigned long long>(stats.runs),
                static_cast<unsigned long long>(stats.completed),
                static_cast<unsigned long long>(stats.deadlocks),
                deadlockSigs.size(),
                static_cast<unsigned long long>(stats.stepLimited),
                static_cast<unsigned long long>(stats.exceptions),
                static_cast<unsigned long long>(stats.dedupedStates),
                static_cast<unsigned long long>(stats.prunedBranches),
                stats.exhausted ? "true" : "false");
    for (std::size_t i = 0; i < stats.firstFailure.size(); ++i) {
      std::printf("%s%u", i ? ", " : "", stats.firstFailure[i]);
    }
    std::printf("]}\n");
  } else {
    std::printf("scenario:       %s\n", scenarioName);
    std::printf("runs:           %llu (%s)\n",
                static_cast<unsigned long long>(stats.runs),
                stats.exhausted ? "tree exhausted"
                                : "budget or callback bounded");
    std::printf("completed:      %llu\n",
                static_cast<unsigned long long>(stats.completed));
    std::printf("deadlocks:      %llu (%zu distinct state%s)\n",
                static_cast<unsigned long long>(stats.deadlocks),
                deadlockSigs.size(), deadlockSigs.size() == 1 ? "" : "s");
    if (stats.stepLimited > 0 || stats.exceptions > 0) {
      std::printf("step-limited:   %llu   exceptions: %llu\n",
                  static_cast<unsigned long long>(stats.stepLimited),
                  static_cast<unsigned long long>(stats.exceptions));
    }
    if (eo.fingerprintPruning || eo.sleepSets) {
      std::printf("reductions:     %llu states deduped, %llu branches pruned\n",
                  static_cast<unsigned long long>(stats.dedupedStates),
                  static_cast<unsigned long long>(stats.prunedBranches));
    }
    if (!stats.firstFailure.empty()) {
      std::printf("first failure:  ");
      for (std::size_t i = 0; i < stats.firstFailure.size(); ++i) {
        std::printf("%s%u", i ? " " : "", stats.firstFailure[i]);
      }
      std::printf("\n(replayable: the schedule above reproduces the failure "
                  "deterministically)\n");
    }
    std::printf("EXPLORE DONE\n");
  }
  return 0;
}
