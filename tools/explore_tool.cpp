// confail_explore: command-line front end for the parallel schedule
// explorer.  Runs one of the canonical scenarios (components/scenarios.hpp)
// through ExhaustiveExplorer and reports coverage, failure counts, and the
// first (lexicographically smallest) failing schedule.
//
// Usage:
//   confail_explore --scenario fig2|ff_t5|ff_t5_small|lock_order|disjoint
//                   [--workers N]      worker threads (0 = hardware)
//                   [--prune]          (depth, fingerprint) state dedup
//                   [--sleep-sets]     adjacent-step independence skip
//                   [--max-runs N]     run budget           (default 10000)
//                   [--max-depth N]    branching depth bound (default none)
//                   [--max-steps N]    per-run step bound   (default 20000)
//                   [--json]           machine-readable output on stdout
//                   [--metrics-out F]  write a metrics-snapshot JSON file
//                   [--chrome-trace F] write a chrome://tracing file of one
//                                      captured run
//                   [--progress]       heartbeat lines on stderr during
//                                      exploration
//
// Observability: --metrics-out / --chrome-trace / --progress attach a
// metrics registry to the explorer, the scheduler and every monitor the
// scenario builds.  The snapshot carries explorer throughput and dedup
// hit-rate, per-monitor contention / wait / notify counts and — for the
// buffer scenarios — CoFG arc coverage measured on a captured
// round-robin run (the same run the Chrome trace renders).
//
// Exit status: 0 on a clean exploration (including one that finds
// failures — finding bugs is the tool working), 1 on an internal error,
// 2 on a usage error.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <set>
#include <string>
#include <vector>

#include "confail/cofg/cofg.hpp"
#include "confail/cofg/coverage.hpp"
#include "confail/components/scenarios.hpp"
#include "confail/obs/metrics.hpp"
#include "confail/obs/summary.hpp"
#include "confail/obs/trace_export.hpp"
#include "confail/sched/explorer.hpp"

namespace sched = confail::sched;
namespace scenarios = confail::components::scenarios;
namespace obs = confail::obs;
namespace cofg = confail::cofg;
namespace events = confail::events;
using confail::components::BoundedBuffer;

namespace {

using Scenario = void (*)(sched::VirtualScheduler&);
using InstrumentedScenario = void (*)(sched::VirtualScheduler&,
                                      const scenarios::Instruments&);

struct NamedScenario {
  const char* name;
  Scenario fn;
  InstrumentedScenario ifn;
  bool hasBuffer;  ///< registers buf.put/buf.take (CoFG coverage applies)
  const char* blurb;
};

constexpr NamedScenario kScenarios[] = {
    {"fig2", scenarios::figure2, scenarios::figure2, true,
     "Figure 2 producer/consumer, correct guards (no failure expected)"},
    {"ff_t5", scenarios::ffT5Notify, scenarios::ffT5Notify, true,
     "FF-T5: notify() where notifyAll() is required (2 items/thread)"},
    {"ff_t5_small", scenarios::ffT5Small, scenarios::ffT5Small, true,
     "FF-T5 variant, 1 item/thread (small exhaustible tree)"},
    {"lock_order", scenarios::lockOrder, scenarios::lockOrder, false,
     "two monitors acquired in opposite orders (deadlock)"},
    {"disjoint", scenarios::disjointCounters, scenarios::disjointCounters,
     false, "two threads on disjoint shared vars (sleep-set showcase)"},
};

int usage() {
  std::fprintf(stderr,
               "usage: confail_explore --scenario <name> [--workers N] "
               "[--prune] [--sleep-sets]\n"
               "                       [--max-runs N] [--max-depth N] "
               "[--max-steps N] [--json]\n"
               "                       [--metrics-out FILE] "
               "[--chrome-trace FILE] [--progress]\n\nscenarios:\n");
  for (const NamedScenario& s : kScenarios) {
    std::fprintf(stderr, "  %-12s %s\n", s.name, s.blurb);
  }
  return 2;
}

std::uint64_t deadlockSignature(const sched::RunResult& r) {
  std::uint64_t h = sched::kFpSeed;
  for (const sched::BlockedThreadInfo& b : r.blocked) {
    h = sched::fpMix(h, (static_cast<std::uint64_t>(b.id) << 32) ^
                            static_cast<std::uint64_t>(b.kind));
    h = sched::fpMix(h, b.resource);
  }
  return h;
}

/// Execute one round-robin run of the scenario with an external trace (for
/// the Chrome export) and the shared metrics registry, then publish CoFG
/// arc coverage of the captured events when the scenario has the buffer.
void captureRun(const NamedScenario& sc, std::uint64_t maxSteps,
                events::Trace& trace, obs::Registry& metrics) {
  sched::RoundRobinStrategy strategy;
  sched::VirtualScheduler::Options so;
  so.maxSteps = maxSteps;
  sched::VirtualScheduler s(strategy, so);
  scenarios::Instruments ins;
  ins.trace = &trace;
  ins.metrics = &metrics;
  sc.ifn(s, ins);
  (void)s.run();  // deadlock / step limit is fine; the trace is the product

  if (!sc.hasBuffer) return;
  const std::vector<events::Event> evs = trace.events();
  const cofg::Cofg putGraph = cofg::Cofg::build(BoundedBuffer<int>::putModel());
  const cofg::Cofg takeGraph =
      cofg::Cofg::build(BoundedBuffer<int>::takeModel());
  cofg::CoverageTracker put(putGraph, trace.findMethod("buf.put"));
  cofg::CoverageTracker take(takeGraph, trace.findMethod("buf.take"));
  put.process(evs);
  take.process(evs);
  put.publishTo(metrics, "cofg.put");
  take.publishTo(metrics, "cofg.take");
  const double covered =
      static_cast<double>(put.coveredArcs() + take.coveredArcs());
  const double total = static_cast<double>(put.totalArcs() + take.totalArcs());
  metrics.gauge("cofg.arcs_covered").set(covered);
  metrics.gauge("cofg.arcs_total").set(total);
  metrics.gauge("cofg.coverage").set(total > 0.0 ? covered / total : 1.0);
}

}  // namespace

int main(int argc, char** argv) {
  const NamedScenario* scenario = nullptr;
  sched::ExhaustiveExplorer::Options eo;
  eo.maxRuns = 10000;
  eo.maxSteps = 20000;
  bool json = false;
  bool progress = false;
  std::string metricsOut;
  std::string chromeTrace;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return ++i < argc ? argv[i] : nullptr;
    };
    try {
      if (arg == "--scenario") {
        const char* v = next();
        if (v == nullptr) return usage();
        for (const NamedScenario& s : kScenarios) {
          if (std::strcmp(s.name, v) == 0) scenario = &s;
        }
        if (scenario == nullptr) {
          std::fprintf(stderr, "confail_explore: unknown scenario '%s'\n", v);
          return usage();
        }
      } else if (arg == "--workers") {
        const char* v = next();
        if (v == nullptr) return usage();
        eo.workers = std::stoul(v);
      } else if (arg == "--max-runs") {
        const char* v = next();
        if (v == nullptr) return usage();
        eo.maxRuns = std::stoull(v);
      } else if (arg == "--max-depth") {
        const char* v = next();
        if (v == nullptr) return usage();
        eo.maxBranchDepth = std::stoull(v);
      } else if (arg == "--max-steps") {
        const char* v = next();
        if (v == nullptr) return usage();
        eo.maxSteps = std::stoull(v);
      } else if (arg == "--prune") {
        eo.fingerprintPruning = true;
      } else if (arg == "--sleep-sets") {
        eo.sleepSets = true;
      } else if (arg == "--json") {
        json = true;
      } else if (arg == "--metrics-out") {
        const char* v = next();
        if (v == nullptr) return usage();
        metricsOut = v;
      } else if (arg == "--chrome-trace") {
        const char* v = next();
        if (v == nullptr) return usage();
        chromeTrace = v;
      } else if (arg == "--progress") {
        progress = true;
      } else {
        std::fprintf(stderr, "confail_explore: unknown option '%s'\n",
                     arg.c_str());
        return usage();
      }
    } catch (const std::exception&) {
      std::fprintf(stderr, "confail_explore: bad value for %s\n", arg.c_str());
      return usage();
    }
  }
  if (scenario == nullptr) return usage();

  const bool instrument =
      !metricsOut.empty() || !chromeTrace.empty() || progress;
  obs::Registry metrics;
  if (instrument) eo.metrics = &metrics;
  if (progress) {
    eo.progressIntervalRuns = eo.maxRuns >= 100 ? eo.maxRuns / 20 : 10;
    eo.onProgress = [](const sched::ExhaustiveExplorer::Progress& p) {
      std::fprintf(stderr,
                   "[progress] runs=%llu queue=%lld steals=%llu "
                   "elapsed=%.1fs (%.0f runs/sec)\n",
                   static_cast<unsigned long long>(p.runs),
                   static_cast<long long>(p.queueDepth),
                   static_cast<unsigned long long>(p.steals), p.elapsedSec,
                   p.runsPerSec);
    };
  }

  // Exploration program: metrics-instrumented when requested (counters are
  // atomic, so this is safe under parallel workers), but never the shared
  // capture trace — that would interleave events of concurrent runs.
  const NamedScenario& sc = *scenario;
  sched::ExhaustiveExplorer::Program program;
  if (instrument) {
    scenarios::Instruments ins;
    ins.metrics = &metrics;
    program = [&sc, ins](sched::VirtualScheduler& s) { sc.ifn(s, ins); };
  } else {
    program = sc.fn;
  }

  std::set<std::uint64_t> deadlockSigs;
  sched::ExhaustiveExplorer explorer(eo);
  sched::ExhaustiveExplorer::Stats stats;
  const auto t0 = std::chrono::steady_clock::now();
  try {
    stats = explorer.explore(
        program, [&deadlockSigs](const std::vector<sched::ThreadId>&,
                                 const sched::RunResult& r) {
          if (r.outcome == sched::Outcome::Deadlock) {
            deadlockSigs.insert(deadlockSignature(r));
          }
          return true;
        });
  } catch (const std::exception& e) {
    std::fprintf(stderr, "confail_explore: %s\n", e.what());
    return 1;
  }
  const double elapsedMs =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                t0)
          .count();

  // One captured run feeds the Chrome trace and the CoFG coverage gauges.
  events::Trace captured;
  if (!chromeTrace.empty() || !metricsOut.empty()) {
    try {
      captureRun(sc, eo.maxSteps, captured, metrics);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "confail_explore: capture run failed: %s\n",
                   e.what());
      return 1;
    }
  }
  if (!chromeTrace.empty() &&
      !obs::writeChromeTraceFile(captured, chromeTrace)) {
    std::fprintf(stderr, "confail_explore: cannot write %s\n",
                 chromeTrace.c_str());
    return 1;
  }
  if (!metricsOut.empty() && !metrics.snapshot().writeFile(metricsOut)) {
    std::fprintf(stderr, "confail_explore: cannot write %s\n",
                 metricsOut.c_str());
    return 1;
  }

  obs::ExploreSummary summary;
  summary.scenario = sc.name;
  summary.runs = stats.runs;
  summary.completed = stats.completed;
  summary.deadlocks = stats.deadlocks;
  summary.stepLimited = stats.stepLimited;
  summary.exceptions = stats.exceptions;
  summary.dedupedStates = stats.dedupedStates;
  summary.prunedBranches = stats.prunedBranches;
  summary.distinctDeadlockStates = deadlockSigs.size();
  summary.exhausted = stats.exhausted;
  summary.stoppedByCallback = stats.stoppedByCallback;
  summary.reductionsEnabled = eo.fingerprintPruning || eo.sleepSets;
  summary.firstFailure = stats.firstFailure;
  if (!stats.firstFailure.empty()) {
    summary.firstFailureOutcome = sched::outcomeName(stats.firstFailureOutcome);
  }
  // Wall time is the one nondeterministic output; report it only when
  // observability was asked for, so the default (and --json) output keeps
  // the byte-identical workers-1-vs-N contract the tests diff on.
  if (instrument) {
    summary.elapsedMs = elapsedMs;
    summary.runsPerSec =
        elapsedMs > 0.0 ? static_cast<double>(stats.runs) * 1000.0 / elapsedMs
                        : 0.0;
  }

  if (json) {
    std::printf("%s\n", summary.toJson().c_str());
  } else {
    std::fputs(summary.human().c_str(), stdout);
    std::printf("EXPLORE DONE\n");
  }
  return 0;
}
