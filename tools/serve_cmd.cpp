// `confail serve` and its satellites: the campaign service verbs.
//
//   serve   --root DIR [--pool N] [--in-process] [--exit-when-idle]
//           [--max-jobs N] [--poll-ms N] [--metrics-out FILE]
//       Run the campaign daemon over a spool directory: adopt queued
//       confail.job.v1 specs, fan their shards across a pool of `confail
//       worker` subprocesses, checkpoint every shard, merge finished jobs
//       into findings/SARIF/matrix documents.  Resumable: restarting over
//       the same root (even after SIGKILL) re-runs only missing shards.
//
//   worker  --job FILE --shard N --out FILE
//       Execute one shard of a job spec and atomically write its
//       confail.shard.v1 result.  This is the subprocess the daemon forks;
//       it is a public verb so a shard can be reproduced by hand.
//
//   submit  --root DIR (--job FILE | --name N [--scenario S]...
//           [--class C]... [--reduction R]... [exploration flags])
//       Enqueue a job (from a spec file, or built from flags) and print
//       its id.  Idempotent per spec content.
//
//   status  --root DIR [--job ID] [--json]
//       Report job states (state.json contents; queued jobs included).
//
//   results --root DIR --job ID [--json-out F] [--sarif-out F]
//           [--matrix-out F] [--json]
//       Fetch a completed job's merged documents.
//
//   drain   --root DIR
//       Ask the daemon to finish in-flight jobs and exit.
//
// Exit codes follow the cli.hpp convention: 0 clean, 1 findings/failures
// (a failed job, unfinished results), 2 usage, 3 internal/IO error.
#include <cstdio>
#include <string>
#include <vector>

#include "cli.hpp"
#include "confail/inject/job_spec.hpp"
#include "confail/serve/client.hpp"
#include "confail/serve/server.hpp"
#include "confail/serve/store.hpp"

namespace confail::cli {

namespace serve = confail::serve;
namespace inject = confail::inject;

namespace {

int usageServe(const char* prog) {
  std::fprintf(stderr,
               "usage: %s --root DIR [--pool N] [--in-process] "
               "[--exit-when-idle]\n"
               "               [--max-jobs N] [--poll-ms N] "
               "[--metrics-out FILE] [--worker-bin PATH]\n",
               prog);
  return 2;
}

int usageWorker(const char* prog) {
  std::fprintf(stderr, "usage: %s --job FILE --shard N --out FILE\n", prog);
  return 2;
}

int usageSubmit(const char* prog) {
  std::fprintf(stderr,
               "usage: %s --root DIR (--job FILE | [--name N] "
               "[--scenario S]... [--class C]...\n"
               "               [--reduction none|sleep|dpor]... "
               "[--max-runs N] [--max-steps N]\n"
               "               [--max-depth N] [--workers N] "
               "[--no-controls])\n",
               prog);
  return 2;
}

int usageStatus(const char* prog) {
  std::fprintf(stderr, "usage: %s --root DIR [--job ID] [--json]\n", prog);
  return 2;
}

int usageResults(const char* prog) {
  std::fprintf(stderr,
               "usage: %s --root DIR --job ID [--json-out FILE] "
               "[--sarif-out FILE]\n"
               "               [--matrix-out FILE] [--json]\n",
               prog);
  return 2;
}

int usageDrain(const char* prog) {
  std::fprintf(stderr, "usage: %s --root DIR\n", prog);
  return 2;
}

bool readWholeFile(const std::string& path, std::string& out) {
  return serve::CampaignStore::readFile(path, out);
}

void printState(const serve::JobState& st) {
  std::printf("%-40s %-10s shards %llu/%llu", st.id.c_str(),
              st.status.c_str(),
              static_cast<unsigned long long>(st.shardsDone),
              static_cast<unsigned long long>(st.shardsTotal));
  if (st.shardsFailed > 0) {
    std::printf(" (%llu failed)",
                static_cast<unsigned long long>(st.shardsFailed));
  }
  if (st.status == "completed") {
    std::printf(", findings %llu",
                static_cast<unsigned long long>(st.findings));
  }
  std::printf("\n");
}

}  // namespace

int cmdServe(const char* prog, int argc, char** argv) {
  serve::ServerOptions opts;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* { return flagValue(i, argc, argv); };
    if (arg == "--root") {
      const char* v = next();
      if (v == nullptr) return usageServe(prog);
      opts.root = v;
    } else if (arg == "--pool") {
      std::uint64_t v = 0;
      if (!parseU64(prog, "--pool", next(), v)) return usageServe(prog);
      opts.poolSize = static_cast<std::size_t>(v);
    } else if (arg == "--in-process") {
      opts.subprocess = false;
    } else if (arg == "--exit-when-idle") {
      opts.exitWhenIdle = true;
    } else if (arg == "--max-jobs") {
      if (!parseU64(prog, "--max-jobs", next(), opts.maxJobs)) {
        return usageServe(prog);
      }
    } else if (arg == "--poll-ms") {
      if (!parseU64(prog, "--poll-ms", next(), opts.pollMs)) {
        return usageServe(prog);
      }
    } else if (arg == "--metrics-out") {
      const char* v = next();
      if (v == nullptr) return usageServe(prog);
      opts.metricsOut = v;
    } else if (arg == "--worker-bin") {
      const char* v = next();
      if (v == nullptr) return usageServe(prog);
      opts.workerBinary = v;
    } else {
      std::fprintf(stderr, "%s: unknown option '%s'\n", prog, arg.c_str());
      return usageServe(prog);
    }
  }
  if (opts.root.empty()) return usageServe(prog);
  try {
    serve::Server server(std::move(opts));
    return server.run();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s: %s\n", prog, e.what());
    return 3;
  }
}

int cmdWorker(const char* prog, int argc, char** argv) {
  std::string jobPath;
  std::string outPath;
  std::uint64_t shardIndex = 0;
  bool haveShard = false;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* { return flagValue(i, argc, argv); };
    if (arg == "--job") {
      const char* v = next();
      if (v == nullptr) return usageWorker(prog);
      jobPath = v;
    } else if (arg == "--shard") {
      if (!parseU64(prog, "--shard", next(), shardIndex)) {
        return usageWorker(prog);
      }
      haveShard = true;
    } else if (arg == "--out") {
      const char* v = next();
      if (v == nullptr) return usageWorker(prog);
      outPath = v;
    } else {
      std::fprintf(stderr, "%s: unknown option '%s'\n", prog, arg.c_str());
      return usageWorker(prog);
    }
  }
  if (jobPath.empty() || outPath.empty() || !haveShard) {
    return usageWorker(prog);
  }
  try {
    std::string text;
    if (!readWholeFile(jobPath, text)) {
      std::fprintf(stderr, "%s: cannot read %s\n", prog, jobPath.c_str());
      return 3;
    }
    inject::JobSpec spec;
    std::string error;
    if (!inject::JobSpec::parse(text, spec, error)) {
      std::fprintf(stderr, "%s: %s\n", prog, error.c_str());
      return 2;
    }
    const std::vector<inject::ShardSpec> shards = inject::expandShards(spec);
    if (shardIndex >= shards.size()) {
      std::fprintf(stderr, "%s: shard %llu out of range (job has %zu)\n",
                   prog, static_cast<unsigned long long>(shardIndex),
                   shards.size());
      return 2;
    }
    inject::RunShardOptions ro;
    ro.captureEvents = true;
    const inject::ShardResult result =
        inject::runShard(spec, shards[static_cast<std::size_t>(shardIndex)],
                         ro);
    if (!serve::CampaignStore::writeFileAtomic(
            outPath, serve::CampaignStore::shardToJson(result) + "\n")) {
      std::fprintf(stderr, "%s: cannot write %s\n", prog, outPath.c_str());
      return 3;
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s: %s\n", prog, e.what());
    return 3;
  }
}

int cmdSubmit(const char* prog, int argc, char** argv) {
  std::string root;
  std::string jobPath;
  inject::JobSpec spec;
  spec.maxRuns = 400;  // service default: modest per-cell budget
  spec.maxSteps = 2000;
  bool builtFromFlags = false;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* { return flagValue(i, argc, argv); };
    if (arg == "--root") {
      const char* v = next();
      if (v == nullptr) return usageSubmit(prog);
      root = v;
    } else if (arg == "--job") {
      const char* v = next();
      if (v == nullptr) return usageSubmit(prog);
      jobPath = v;
    } else if (arg == "--name") {
      const char* v = next();
      if (v == nullptr) return usageSubmit(prog);
      spec.name = v;
      builtFromFlags = true;
    } else if (arg == "--scenario") {
      const char* v = next();
      if (v == nullptr) return usageSubmit(prog);
      spec.scenarios.push_back(v);
      builtFromFlags = true;
    } else if (arg == "--class") {
      const char* v = next();
      taxonomy::FailureClass cls = taxonomy::FailureClass::FF_T5;
      if (v == nullptr || !taxonomy::parseFailureClass(v, cls)) {
        std::fprintf(stderr, "%s: unknown failure class '%s'\n", prog,
                     v == nullptr ? "" : v);
        return usageSubmit(prog);
      }
      spec.classes.push_back(cls);
      builtFromFlags = true;
    } else if (arg == "--reduction") {
      const char* v = next();
      sched::ExhaustiveExplorer::Reduction r =
          sched::ExhaustiveExplorer::Reduction::None;
      if (v == nullptr || !inject::parseReduction(v, r)) {
        std::fprintf(stderr, "%s: unknown reduction '%s'\n", prog,
                     v == nullptr ? "" : v);
        return usageSubmit(prog);
      }
      if (!builtFromFlags) spec.reductions.clear();
      spec.reductions.push_back(r);
      builtFromFlags = true;
    } else if (arg == "--max-runs") {
      if (!parseU64(prog, "--max-runs", next(), spec.maxRuns)) {
        return usageSubmit(prog);
      }
      builtFromFlags = true;
    } else if (arg == "--max-steps") {
      if (!parseU64(prog, "--max-steps", next(), spec.maxSteps)) {
        return usageSubmit(prog);
      }
      builtFromFlags = true;
    } else if (arg == "--max-depth") {
      std::uint64_t v = 0;
      if (!parseU64(prog, "--max-depth", next(), v)) return usageSubmit(prog);
      spec.maxBranchDepth = static_cast<std::size_t>(v);
      builtFromFlags = true;
    } else if (arg == "--workers") {
      std::uint64_t v = 0;
      if (!parseU64(prog, "--workers", next(), v)) return usageSubmit(prog);
      spec.workers = static_cast<std::size_t>(v);
      builtFromFlags = true;
    } else if (arg == "--no-controls") {
      spec.negativeControls = false;
      builtFromFlags = true;
    } else {
      std::fprintf(stderr, "%s: unknown option '%s'\n", prog, arg.c_str());
      return usageSubmit(prog);
    }
  }
  if (root.empty()) return usageSubmit(prog);
  if (!jobPath.empty() && builtFromFlags) {
    std::fprintf(stderr, "%s: --job and spec flags are exclusive\n", prog);
    return usageSubmit(prog);
  }
  if (!jobPath.empty()) {
    std::string text;
    if (!readWholeFile(jobPath, text)) {
      std::fprintf(stderr, "%s: cannot read %s\n", prog, jobPath.c_str());
      return 3;
    }
    std::string error;
    if (!inject::JobSpec::parse(text, spec, error)) {
      std::fprintf(stderr, "%s: %s\n", prog, error.c_str());
      return 2;
    }
  }
  const std::string problem = spec.validate();
  if (!problem.empty()) {
    std::fprintf(stderr, "%s: invalid job spec: %s\n", prog,
                 problem.c_str());
    return 2;
  }
  const std::string id = serve::submitJob(root, spec);
  if (id.empty()) {
    std::fprintf(stderr, "%s: cannot write to spool root %s\n", prog,
                 root.c_str());
    return 3;
  }
  std::printf("%s\n", id.c_str());
  return 0;
}

int cmdStatus(const char* prog, int argc, char** argv) {
  std::string root;
  std::string jobId;
  bool json = false;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* { return flagValue(i, argc, argv); };
    if (arg == "--root") {
      const char* v = next();
      if (v == nullptr) return usageStatus(prog);
      root = v;
    } else if (arg == "--job") {
      const char* v = next();
      if (v == nullptr) return usageStatus(prog);
      jobId = v;
    } else if (arg == "--json") {
      json = true;
    } else {
      std::fprintf(stderr, "%s: unknown option '%s'\n", prog, arg.c_str());
      return usageStatus(prog);
    }
  }
  if (root.empty()) return usageStatus(prog);
  std::vector<serve::JobState> states;
  if (!jobId.empty()) {
    serve::JobState st;
    if (!serve::jobStatus(root, jobId, st)) {
      std::fprintf(stderr, "%s: unknown job '%s'\n", prog, jobId.c_str());
      return 1;
    }
    states.push_back(std::move(st));
  } else {
    states = serve::allJobStatus(root);
  }
  if (json) {
    std::printf("%s\n", serve::statusToJson(states).c_str());
  } else {
    for (const serve::JobState& st : states) printState(st);
    if (states.empty()) std::printf("no jobs\n");
  }
  for (const serve::JobState& st : states) {
    if (st.status == "failed") return 1;
  }
  return 0;
}

int cmdResults(const char* prog, int argc, char** argv) {
  std::string root;
  std::string jobId;
  std::string jsonOut;
  std::string sarifOut;
  std::string matrixOut;
  bool json = false;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* { return flagValue(i, argc, argv); };
    if (arg == "--root") {
      const char* v = next();
      if (v == nullptr) return usageResults(prog);
      root = v;
    } else if (arg == "--job") {
      const char* v = next();
      if (v == nullptr) return usageResults(prog);
      jobId = v;
    } else if (arg == "--json-out") {
      const char* v = next();
      if (v == nullptr) return usageResults(prog);
      jsonOut = v;
    } else if (arg == "--sarif-out") {
      const char* v = next();
      if (v == nullptr) return usageResults(prog);
      sarifOut = v;
    } else if (arg == "--matrix-out") {
      const char* v = next();
      if (v == nullptr) return usageResults(prog);
      matrixOut = v;
    } else if (arg == "--json") {
      json = true;
    } else {
      std::fprintf(stderr, "%s: unknown option '%s'\n", prog, arg.c_str());
      return usageResults(prog);
    }
  }
  if (root.empty() || jobId.empty()) return usageResults(prog);
  serve::JobResults results;
  if (!serve::jobResults(root, jobId, results)) {
    std::fprintf(stderr, "%s: unknown job '%s'\n", prog, jobId.c_str());
    return 1;
  }
  if (!results.complete) {
    std::fprintf(stderr, "%s: job '%s' has no merged results yet\n", prog,
                 jobId.c_str());
    return 1;
  }
  if (!jsonOut.empty() && !serve::CampaignStore::writeFileAtomic(
                              jsonOut, results.findingsJson)) {
    std::fprintf(stderr, "%s: cannot write %s\n", prog, jsonOut.c_str());
    return 3;
  }
  if (!sarifOut.empty() &&
      !serve::CampaignStore::writeFileAtomic(sarifOut, results.sarif)) {
    std::fprintf(stderr, "%s: cannot write %s\n", prog, sarifOut.c_str());
    return 3;
  }
  if (!matrixOut.empty() && !serve::CampaignStore::writeFileAtomic(
                                matrixOut, results.matrixJson)) {
    std::fprintf(stderr, "%s: cannot write %s\n", prog, matrixOut.c_str());
    return 3;
  }
  if (json || (jsonOut.empty() && sarifOut.empty() && matrixOut.empty())) {
    std::fputs(results.findingsJson.c_str(), stdout);
    if (!results.findingsJson.empty() &&
        results.findingsJson.back() != '\n') {
      std::printf("\n");
    }
  }
  return 0;
}

int cmdDrain(const char* prog, int argc, char** argv) {
  std::string root;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* { return flagValue(i, argc, argv); };
    if (arg == "--root") {
      const char* v = next();
      if (v == nullptr) return usageDrain(prog);
      root = v;
    } else {
      std::fprintf(stderr, "%s: unknown option '%s'\n", prog, arg.c_str());
      return usageDrain(prog);
    }
  }
  if (root.empty()) return usageDrain(prog);
  if (!serve::requestDrain(root)) {
    std::fprintf(stderr, "%s: cannot write to spool root %s\n", prog,
                 root.c_str());
    return 3;
  }
  std::printf("drain requested\n");
  return 0;
}

}  // namespace confail::cli
