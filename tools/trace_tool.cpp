// confail_trace: forwarding shim kept for script compatibility.  The
// implementation moved to the unified CLI (`confail trace`); see
// trace_cmd.cpp.  Flags and output are unchanged.
#include "cli.hpp"

int main(int argc, char** argv) {
  return confail::cli::cmdTrace("confail_trace", argc - 1, argv + 1);
}
