// confail: the unified command-line front end.
//
// Every capability of the toolkit is a verb of this one binary; see
// cli.hpp for the shared flag and exit-status conventions.
#include <cstdio>
#include <cstring>

#include "cli.hpp"

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: confail <verb> [args...]\n\nverbs:\n"
               "  explore    explore a component's schedule space\n"
               "  trace      analyze a serialized execution trace\n"
               "  ingest     stream live JSONL/Chrome events through the "
               "online detectors\n"
               "  inject     inject Table 1 deviations; build the detection "
               "matrix\n"
               "  fuzz       generate seeded programs; run differential "
               "oracles\n"
               "  petri      check the N x M thread/lock Petri model; "
               "cross-check the explorer against it\n"
               "  obs-check  validate emitted metrics/trace files\n"
               "  serve      run the campaign daemon over a spool directory\n"
               "  worker     run one campaign shard (serve's subprocess)\n"
               "  submit     enqueue a campaign job for the daemon\n"
               "  status     report job states from a spool directory\n"
               "  results    fetch a completed job's merged documents\n"
               "  drain      ask the daemon to finish up and exit\n"
               "\nrun `confail <verb>` with no arguments for per-verb usage.\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const char* verb = argv[1];
  const int rest = argc - 2;
  char** restv = argv + 2;
  if (std::strcmp(verb, "explore") == 0) {
    return confail::cli::cmdExplore("confail explore", rest, restv);
  }
  if (std::strcmp(verb, "trace") == 0) {
    return confail::cli::cmdTrace("confail trace", rest, restv);
  }
  if (std::strcmp(verb, "ingest") == 0) {
    return confail::cli::cmdIngest("confail ingest", rest, restv);
  }
  if (std::strcmp(verb, "inject") == 0) {
    return confail::cli::cmdInject("confail inject", rest, restv);
  }
  if (std::strcmp(verb, "fuzz") == 0) {
    return confail::cli::cmdFuzz("confail fuzz", rest, restv);
  }
  if (std::strcmp(verb, "petri") == 0) {
    return confail::cli::cmdPetri("confail petri", rest, restv);
  }
  if (std::strcmp(verb, "obs-check") == 0) {
    return confail::cli::cmdObsCheck("confail obs-check", rest, restv);
  }
  if (std::strcmp(verb, "serve") == 0) {
    return confail::cli::cmdServe("confail serve", rest, restv);
  }
  if (std::strcmp(verb, "worker") == 0) {
    return confail::cli::cmdWorker("confail worker", rest, restv);
  }
  if (std::strcmp(verb, "submit") == 0) {
    return confail::cli::cmdSubmit("confail submit", rest, restv);
  }
  if (std::strcmp(verb, "status") == 0) {
    return confail::cli::cmdStatus("confail status", rest, restv);
  }
  if (std::strcmp(verb, "results") == 0) {
    return confail::cli::cmdResults("confail results", rest, restv);
  }
  if (std::strcmp(verb, "drain") == 0) {
    return confail::cli::cmdDrain("confail drain", rest, restv);
  }
  if (std::strcmp(verb, "--help") != 0 && std::strcmp(verb, "-h") != 0) {
    std::fprintf(stderr, "confail: unknown verb '%s'\n", verb);
  }
  return usage();
}
