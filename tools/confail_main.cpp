// confail: the unified command-line front end.
//
//   confail explore   ...   parallel schedule exploration (was confail_explore)
//   confail trace     ...   offline trace analysis        (was confail_trace)
//   confail inject    ...   deviation injection / detection matrix
//   confail obs-check ...   observability file validation (was confail_obs_check)
//
// Each verb's flags are unchanged from the standalone binary it replaces;
// the old binaries still exist as forwarding shims.
#include <cstdio>
#include <cstring>

#include "cli.hpp"

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: confail <verb> [args...]\n\nverbs:\n"
               "  explore    explore a component's schedule space\n"
               "  trace      analyze a serialized execution trace\n"
               "  ingest     stream live JSONL/Chrome events through the "
               "online detectors\n"
               "  inject     inject Table 1 deviations; build the detection "
               "matrix\n"
               "  fuzz       generate seeded programs; run differential "
               "oracles\n"
               "  obs-check  validate emitted metrics/trace files\n"
               "\nrun `confail <verb>` with no arguments for per-verb usage.\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const char* verb = argv[1];
  const int rest = argc - 2;
  char** restv = argv + 2;
  if (std::strcmp(verb, "explore") == 0) {
    return confail::cli::cmdExplore("confail explore", rest, restv);
  }
  if (std::strcmp(verb, "trace") == 0) {
    return confail::cli::cmdTrace("confail trace", rest, restv);
  }
  if (std::strcmp(verb, "ingest") == 0) {
    return confail::cli::cmdIngest("confail ingest", rest, restv);
  }
  if (std::strcmp(verb, "inject") == 0) {
    return confail::cli::cmdInject("confail inject", rest, restv);
  }
  if (std::strcmp(verb, "fuzz") == 0) {
    return confail::cli::cmdFuzz("confail fuzz", rest, restv);
  }
  if (std::strcmp(verb, "obs-check") == 0) {
    return confail::cli::cmdObsCheck("confail obs-check", rest, restv);
  }
  if (std::strcmp(verb, "--help") != 0 && std::strcmp(verb, "-h") != 0) {
    std::fprintf(stderr, "confail: unknown verb '%s'\n", verb);
  }
  return usage();
}
