// Shared command layer of the unified `confail` CLI.
//
// Each verb of the multi-tool is an ordinary main-shaped function taking
// the display name to use in usage/error messages (`prog`) and the
// arguments AFTER the verb (argv[0] is the first flag, not a program
// name).  The `confail` binary dispatches verbs onto these; the legacy
// confail_explore / confail_trace / confail_obs_check binaries are
// one-line forwarding shims kept for script compatibility.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>

namespace confail::cli {

/// confail explore — parallel schedule exploration of a registry scenario.
int cmdExplore(const char* prog, int argc, char** argv);

/// confail trace — offline analysis of serialized traces.
int cmdTrace(const char* prog, int argc, char** argv);

/// confail ingest — online analysis of live event streams.
int cmdIngest(const char* prog, int argc, char** argv);

/// confail obs-check — validate emitted observability files.
int cmdObsCheck(const char* prog, int argc, char** argv);

/// confail inject — deviation injection: single plan or full campaign.
int cmdInject(const char* prog, int argc, char** argv);

/// confail fuzz — seeded program generation + differential oracles.
int cmdFuzz(const char* prog, int argc, char** argv);

// ---- shared flag parsing ---------------------------------------------------

/// The value of a flag: advances `i`; nullptr when the argument is missing.
inline const char* flagValue(int& i, int argc, char** argv) {
  return ++i < argc ? argv[i] : nullptr;
}

/// Parse an unsigned integer flag value; returns false (and reports via
/// `prog`) on a missing or malformed value.
inline bool parseU64(const char* prog, const char* flag, const char* v,
                     std::uint64_t& out) {
  if (v == nullptr) return false;
  try {
    out = std::stoull(v);
    return true;
  } catch (const std::exception&) {
    std::fprintf(stderr, "%s: bad value for %s\n", prog, flag);
    return false;
  }
}

}  // namespace confail::cli
