// Shared command layer of the unified `confail` CLI.
//
// Each verb of the multi-tool is an ordinary main-shaped function taking
// the display name to use in usage/error messages (`prog`) and the
// arguments AFTER the verb (argv[0] is the first flag, not a program
// name).  The `confail` binary dispatches verbs onto these.  The legacy
// confail_explore / confail_trace / confail_obs_check shim binaries are
// gone; scripts invoke `confail <verb>` directly.
//
// Conventions every verb follows:
//
//   Output flags — one spelling per artifact, regardless of verb:
//     --json-out FILE     confail.findings.v1 findings document
//     --sarif-out FILE    SARIF 2.1.0 findings document
//     --metrics-out FILE  obs metrics snapshot (counters/gauges/histograms)
//   A verb that cannot produce an artifact simply does not take its flag.
//
//   Exit status, uniform across verbs:
//     0  clean — the tool ran and found nothing wrong
//     1  findings / failures present (detector findings, failing runs, a
//        failed matrix or job — the tool worked and has news)
//     2  usage error (unknown flag, missing argument, unknown scenario)
//     3  internal error (I/O failure, exception) — the result is unusable
//   `trace selftest` and `fuzz` differential verdicts return 0 for "the
//   machinery checked out" even though seeded faults produce findings on
//   the way; their job is the check, not the findings.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>

namespace confail::cli {

/// confail explore — parallel schedule exploration of a registry scenario.
int cmdExplore(const char* prog, int argc, char** argv);

/// confail trace — offline analysis of serialized traces.
int cmdTrace(const char* prog, int argc, char** argv);

/// confail ingest — online analysis of live event streams.
int cmdIngest(const char* prog, int argc, char** argv);

/// confail obs-check — validate emitted observability files.
int cmdObsCheck(const char* prog, int argc, char** argv);

/// confail inject — deviation injection: single plan or full campaign.
int cmdInject(const char* prog, int argc, char** argv);

/// confail fuzz — seeded program generation + differential oracles.
int cmdFuzz(const char* prog, int argc, char** argv);

/// confail serve — campaign daemon over a spool directory.
int cmdServe(const char* prog, int argc, char** argv);

/// confail worker — run one campaign shard (the serve daemon's subprocess).
int cmdWorker(const char* prog, int argc, char** argv);

/// confail submit — enqueue a confail.job.v1 spec for the daemon.
int cmdSubmit(const char* prog, int argc, char** argv);

/// confail status — report job states from a spool directory.
int cmdStatus(const char* prog, int argc, char** argv);

/// confail results — fetch a completed job's merged documents.
int cmdResults(const char* prog, int argc, char** argv);

/// confail drain — ask the daemon to finish in-flight jobs and exit.
int cmdDrain(const char* prog, int argc, char** argv);

/// confail petri — N x M thread/lock net analysis + explorer cross-check.
int cmdPetri(const char* prog, int argc, char** argv);

// ---- shared flag parsing ---------------------------------------------------

/// The value of a flag: advances `i`; nullptr when the argument is missing.
inline const char* flagValue(int& i, int argc, char** argv) {
  return ++i < argc ? argv[i] : nullptr;
}

/// Parse an unsigned integer flag value; returns false (and reports via
/// `prog`) on a missing or malformed value.
inline bool parseU64(const char* prog, const char* flag, const char* v,
                     std::uint64_t& out) {
  if (v == nullptr) return false;
  try {
    out = std::stoull(v);
    return true;
  } catch (const std::exception&) {
    std::fprintf(stderr, "%s: bad value for %s\n", prog, flag);
    return false;
  }
}

}  // namespace confail::cli
