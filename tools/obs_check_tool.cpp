// confail_obs_check: forwarding shim kept for script compatibility.  The
// implementation moved to the unified CLI (`confail obs-check`); see
// obs_check_cmd.cpp.  Flags and output are unchanged.
#include "cli.hpp"

int main(int argc, char** argv) {
  return confail::cli::cmdObsCheck("confail_obs_check", argc - 1, argv + 1);
}
