// `confail inject`: the deviation-injection engine's front end.
//
// Two modes:
//
//   inject --scenario <name> --class <FF-T5> [--monitor M] [--victim T]
//          [--after N] [--count N] [exploration flags] [--json]
//       Run ONE injection plan against one scenario and report which
//       detectors caught the injected class (a single matrix cell).
//
//   inject --campaign [--out FILE] [exploration flags]
//       Run the full detection-matrix campaign: every registry scenario x
//       every applicable injectable Table 1 class, plus negative controls.
//       --out writes the machine-readable matrix (confail.injection.v1);
//       stdout gets the human rendering ending in INJECTION MATRIX OK|FAIL.
//
// Exit status follows cli.hpp: single-plan mode returns 1 when detectors
// produced findings (the usual outcome of a successful injection), campaign
// mode returns 1 unless the matrix is OK; 2 usage, 3 internal.
//
// Exploration flags (both modes): --max-runs, --max-steps, --max-depth,
// --workers, --reduction, --no-controls (campaign only).
#include <cstdio>
#include <fstream>
#include <string>

#include "cli.hpp"
#include "confail/detect/report_sink.hpp"
#include "confail/events/trace.hpp"
#include "confail/inject/campaign.hpp"
#include "confail/inject/explore_config.hpp"
#include "confail/inject/job_spec.hpp"
#include "confail/obs/json.hpp"
#include "confail/obs/metrics.hpp"
#include "confail/taxonomy/taxonomy.hpp"

namespace confail::cli {

namespace inject = confail::inject;
namespace scenarios = confail::components::scenarios;
namespace taxonomy = confail::taxonomy;

namespace {

int usage(const char* prog) {
  std::fprintf(stderr,
               "usage: %s --scenario <name> --class <FF-T5> [--monitor M] "
               "[--victim T]\n"
               "               [--after N] [--count N] [--json]\n"
               "               [--sarif-out FILE] [--json-out FILE] "
               "[--findings-cap N]\n"
               "       %s --campaign [--out FILE] [--no-controls]\n"
               "       common: [--max-runs N] [--max-steps N] [--max-depth N] "
               "[--workers N]\n"
               "               [--reduction none|sleep|dpor]\n\n"
               "injectable classes:\n",
               prog, prog);
  for (taxonomy::FailureClass cls : inject::injectableClasses()) {
    std::fprintf(stderr, "  %-6s %s\n", taxonomy::failureClassName(cls),
                 inject::operatorName(cls));
  }
  return 2;
}

std::string cellJson(const inject::MatrixCell& c) {
  obs::JsonWriter w;
  w.beginObject();
  w.field("schema", "confail.injection.cell.v1");
  w.field("scenario", c.scenario);
  w.field("class", taxonomy::failureClassName(c.cls));
  w.field("operator", inject::operatorName(c.cls));
  w.field("plan", c.plan.describe());
  w.field("runs", c.runs);
  w.field("deviated_runs", c.deviatedRuns);
  w.field("failing_runs", c.failingRuns);
  w.field("caught", c.caught);
  w.field("classifier_agrees", c.classifierAgrees);
  w.key("caught_by");
  w.beginArray();
  for (const std::string& name : c.caughtBy()) w.value(name);
  w.endArray();
  w.key("detectors");
  w.beginObject();
  for (const inject::DetectorCell& d : c.detectors) {
    w.key(d.detector);
    w.beginObject();
    w.field("findings", d.findings);
    w.field("hits", d.hits);
    w.endObject();
  }
  w.endObject();
  w.endObject();
  return w.str();
}

void printCell(const inject::MatrixCell& c) {
  std::printf("plan: %s\n", c.plan.describe().c_str());
  std::printf("runs %llu, deviated %llu, failing %llu\n",
              static_cast<unsigned long long>(c.runs),
              static_cast<unsigned long long>(c.deviatedRuns),
              static_cast<unsigned long long>(c.failingRuns));
  for (const inject::DetectorCell& d : c.detectors) {
    if (d.findings == 0 && d.hits == 0) continue;
    std::printf("  %-20s findings %llu, hits on %s: %llu\n", d.detector.c_str(),
                static_cast<unsigned long long>(d.findings),
                taxonomy::failureClassName(c.cls),
                static_cast<unsigned long long>(d.hits));
  }
  std::printf("%s: %s%s\n", taxonomy::failureClassName(c.cls),
              c.caught ? "caught" : "MISSED",
              c.classifierAgrees ? " (+classifier)" : "");
}

}  // namespace

int cmdInject(const char* prog, int argc, char** argv) {
  bool campaign = false;
  bool json = false;
  bool haveClass = false;
  const scenarios::NamedScenario* scenario = nullptr;
  taxonomy::FailureClass cls = taxonomy::FailureClass::FF_T5;
  std::string monitor;
  std::string victim;
  bool haveVictim = false;
  std::uint64_t after = 0;
  bool haveAfter = false;
  std::uint64_t count = 0;
  bool haveCount = false;
  std::string outFile;
  std::string sarifOut;
  std::string findingsOut;
  std::uint64_t findingsCap = 0;
  inject::CampaignOptions opts;

  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* { return flagValue(i, argc, argv); };
    if (arg == "--campaign") {
      campaign = true;
    } else if (arg == "--json") {
      json = true;
    } else if (arg == "--no-controls") {
      opts.negativeControls = false;
    } else if (arg == "--scenario") {
      const char* v = next();
      if (v == nullptr) return usage(prog);
      scenario = scenarios::find(v);
      if (scenario == nullptr) {
        std::fprintf(stderr, "%s: unknown scenario '%s'\n", prog, v);
        return usage(prog);
      }
    } else if (arg == "--class") {
      const char* v = next();
      if (v == nullptr) return usage(prog);
      if (!taxonomy::parseFailureClass(v, cls)) {
        std::fprintf(stderr, "%s: unknown failure class '%s'\n", prog, v);
        return usage(prog);
      }
      haveClass = true;
    } else if (arg == "--monitor") {
      const char* v = next();
      if (v == nullptr) return usage(prog);
      monitor = v;
    } else if (arg == "--victim") {
      const char* v = next();
      if (v == nullptr) return usage(prog);
      victim = v;
      haveVictim = true;
    } else if (arg == "--after") {
      if (!parseU64(prog, "--after", next(), after)) return usage(prog);
      haveAfter = true;
    } else if (arg == "--count") {
      if (!parseU64(prog, "--count", next(), count)) return usage(prog);
      haveCount = true;
    } else if (arg == "--out") {
      const char* v = next();
      if (v == nullptr) return usage(prog);
      outFile = v;
    } else if (arg == "--sarif-out") {
      const char* v = next();
      if (v == nullptr) return usage(prog);
      sarifOut = v;
    } else if (arg == "--json-out" || arg == "--findings-out") {
      // --findings-out is the historical spelling, kept as an alias.
      const char* v = next();
      if (v == nullptr) return usage(prog);
      findingsOut = v;
    } else if (arg == "--reduction") {
      const char* v = next();
      if (v == nullptr || !inject::parseReduction(v, opts.reduction)) {
        std::fprintf(stderr, "%s: unknown reduction '%s'\n", prog,
                     v == nullptr ? "" : v);
        return usage(prog);
      }
    } else if (arg == "--findings-cap") {
      if (!parseU64(prog, "--findings-cap", next(), findingsCap)) {
        return usage(prog);
      }
    } else if (arg == "--max-runs") {
      if (!parseU64(prog, "--max-runs", next(), opts.maxRuns)) {
        return usage(prog);
      }
    } else if (arg == "--max-steps") {
      if (!parseU64(prog, "--max-steps", next(), opts.maxSteps)) {
        return usage(prog);
      }
    } else if (arg == "--max-depth") {
      std::uint64_t v = 0;
      if (!parseU64(prog, "--max-depth", next(), v)) return usage(prog);
      opts.maxBranchDepth = static_cast<std::size_t>(v);
    } else if (arg == "--workers") {
      std::uint64_t v = 0;
      if (!parseU64(prog, "--workers", next(), v)) return usage(prog);
      opts.workers = static_cast<std::size_t>(v);
    } else {
      std::fprintf(stderr, "%s: unknown option '%s'\n", prog, arg.c_str());
      return usage(prog);
    }
  }

  try {
    if (campaign) {
      const inject::CampaignResult result = inject::runCampaign(opts);
      if (!outFile.empty()) {
        std::ofstream out(outFile);
        if (!out || !(out << result.toJson() << '\n')) {
          std::fprintf(stderr, "%s: cannot write %s\n", prog, outFile.c_str());
          return 3;
        }
      }
      if (json) {
        std::printf("%s\n", result.toJson().c_str());
      } else {
        std::fputs(result.human().c_str(), stdout);
      }
      return result.ok() ? 0 : 1;
    }

    if (scenario == nullptr || !haveClass) return usage(prog);
    if (!inject::isInjectable(cls)) {
      std::fprintf(stderr, "%s: %s is not injectable (structural class)\n",
                   prog, taxonomy::failureClassName(cls));
      return 2;
    }
    if (!inject::planApplies(cls, *scenario)) {
      std::fprintf(stderr,
                   "%s: %s does not apply to scenario '%s' (no deviation "
                   "point)\n",
                   prog, taxonomy::failureClassName(cls),
                   scenario->name.c_str());
      return 2;
    }
    inject::InjectionPlan plan = inject::defaultPlanFor(cls, *scenario);
    if (!monitor.empty()) plan.monitor = monitor;
    if (haveVictim) plan.victim = victim;
    if (haveAfter) plan.after = after;
    if (haveCount) plan.count = count;

    // Single-plan mode can render the findings documents: all runs are of
    // one scenario, whose deterministic wiring keeps ids -> names stable,
    // so one captured run's name tables resolve every finding.
    confail::detect::ReportSink sink(
        static_cast<std::size_t>(findingsCap));
    sink.setSource(scenario->name + "+" +
                   taxonomy::failureClassName(cls));
    const bool wantSink = !sarifOut.empty() || !findingsOut.empty();
    if (wantSink) opts.sink = &sink;

    const inject::MatrixCell cell = inject::runCell(*scenario, plan, opts);

    if (wantSink) {
      events::Trace captured;
      obs::Registry metrics;
      inject::ExploreConfig cfg;
      cfg.scenario(*scenario).plan(plan);
      cfg.capture(captured, metrics);
      const confail::detect::TraceNames names(captured);
      if (!sarifOut.empty() && !sink.writeSarifFile(names, sarifOut)) {
        std::fprintf(stderr, "%s: cannot write %s\n", prog,
                     sarifOut.c_str());
        return 3;
      }
      if (!findingsOut.empty() && !sink.writeJsonFile(names, findingsOut)) {
        std::fprintf(stderr, "%s: cannot write %s\n", prog,
                     findingsOut.c_str());
        return 3;
      }
    }
    if (json) {
      std::printf("%s\n", cellJson(cell).c_str());
    } else {
      printCell(cell);
    }
    std::uint64_t totalFindings = 0;
    for (const inject::DetectorCell& d : cell.detectors) {
      totalFindings += d.findings;
    }
    return totalFindings > 0 || cell.failingRuns > 0 ? 1 : 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s: %s\n", prog, e.what());
    return 3;
  }
}

}  // namespace confail::cli
