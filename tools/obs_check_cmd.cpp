// `confail obs-check` (formerly confail_obs_check): validate the files the
// observability layer emits.
//
//   obs-check metrics <metrics.json> [required-key ...]
//   obs-check chrome  <trace.json> [min-threads]
//   obs-check sarif   <findings.sarif> [min-results]
//
// `metrics` parses the snapshot document, requires the counters/gauges/
// histograms sections, and checks each extra argument resolves as a dotted
// path (e.g. gauges.explorer.runs_per_sec is spelled
// "gauges/explorer.runs_per_sec" — one '/' separates the section from the
// metric name, which itself contains dots).
//
// `chrome` parses a Chrome trace_event document and checks that every
// thread named by a thread_name metadata record has at least one non-
// metadata event on its track (min-threads defaults to 1).
//
// `sarif` parses a SARIF 2.1.0 document (as written by `trace detect
// --sarif-out`, `ingest --sarif-out` or `inject --sarif-out`) and checks
// the structural invariants viewers rely on: version 2.1.0, at least one
// run with a tool.driver.name, every result's ruleId declared in the
// driver's rules, every result carrying a message.text, and at least
// min-results results (default 0).
//
// Exit status: 0 when valid, 1 when a check fails, 2 on usage errors.
// Used by the metrics-check ctest entries; prints OBS CHECK OK on success.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>

#include "cli.hpp"
#include "confail/obs/json.hpp"

namespace confail::cli {

namespace obs = confail::obs;

namespace {

int usage(const char* prog) {
  std::fprintf(stderr,
               "usage: %s metrics <file> [section/key ...]\n"
               "       %s chrome <file> [min-threads]\n"
               "       %s sarif <file> [min-results]\n",
               prog, prog, prog);
  return 2;
}

bool readFile(const std::string& path, std::string& out) {
  std::ifstream in(path);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  out = ss.str();
  return true;
}

int checkMetrics(const char* prog, const std::string& path, int argc,
                 char** argv, int from) {
  std::string text;
  if (!readFile(path, text)) {
    std::fprintf(stderr, "%s: cannot read %s\n", prog, path.c_str());
    return 1;
  }
  obs::JsonValue doc;
  try {
    doc = obs::parseJson(text);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s: %s: %s\n", prog, path.c_str(), e.what());
    return 1;
  }
  int failures = 0;
  for (const char* section : {"counters", "gauges", "histograms"}) {
    const obs::JsonValue* v = doc.get(section);
    if (v == nullptr || !v->isObject()) {
      std::fprintf(stderr, "MISSING section: %s\n", section);
      ++failures;
    }
  }
  for (int i = from; i < argc; ++i) {
    const std::string spec = argv[i];
    const std::size_t slash = spec.find('/');
    if (slash == std::string::npos) {
      std::fprintf(stderr, "bad key spec (want section/name): %s\n",
                   spec.c_str());
      ++failures;
      continue;
    }
    const obs::JsonValue* section = doc.get(spec.substr(0, slash));
    const obs::JsonValue* v =
        section != nullptr ? section->get(spec.substr(slash + 1)) : nullptr;
    if (v == nullptr) {
      std::fprintf(stderr, "MISSING metric: %s\n", spec.c_str());
      ++failures;
    }
  }
  if (failures > 0) return 1;
  std::printf("OBS CHECK OK (%s)\n", path.c_str());
  return 0;
}

int checkChrome(const char* prog, const std::string& path, long minThreads) {
  std::string text;
  if (!readFile(path, text)) {
    std::fprintf(stderr, "%s: cannot read %s\n", prog, path.c_str());
    return 1;
  }
  obs::JsonValue doc;
  try {
    doc = obs::parseJson(text);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s: %s: %s\n", prog, path.c_str(), e.what());
    return 1;
  }
  const obs::JsonValue* evs = doc.get("traceEvents");
  if (evs == nullptr || !evs->isArray()) {
    std::fprintf(stderr, "MISSING traceEvents array\n");
    return 1;
  }
  std::set<double> namedThreads;
  std::map<double, std::size_t> eventsPerThread;
  for (const obs::JsonValue& e : evs->array) {
    const obs::JsonValue* ph = e.get("ph");
    const obs::JsonValue* tid = e.get("tid");
    if (ph == nullptr || tid == nullptr || !tid->isNumber()) continue;
    if (ph->string == "M") {
      namedThreads.insert(tid->number);
    } else {
      ++eventsPerThread[tid->number];
    }
  }
  if (static_cast<long>(namedThreads.size()) < minThreads) {
    std::fprintf(stderr, "expected >= %ld named threads, found %zu\n",
                 minThreads, namedThreads.size());
    return 1;
  }
  int failures = 0;
  for (double t : namedThreads) {
    if (eventsPerThread[t] == 0) {
      std::fprintf(stderr, "thread tid=%.0f has a name but no events\n", t);
      ++failures;
    }
  }
  if (failures > 0) return 1;
  std::printf("OBS CHECK OK (%s: %zu threads, all with events)\n",
              path.c_str(), namedThreads.size());
  return 0;
}

int checkSarif(const char* prog, const std::string& path, long minResults) {
  std::string text;
  if (!readFile(path, text)) {
    std::fprintf(stderr, "%s: cannot read %s\n", prog, path.c_str());
    return 1;
  }
  obs::JsonValue doc;
  try {
    doc = obs::parseJson(text);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s: %s: %s\n", prog, path.c_str(), e.what());
    return 1;
  }
  const obs::JsonValue* version = doc.get("version");
  if (version == nullptr || version->string != "2.1.0") {
    std::fprintf(stderr, "MISSING or wrong sarif version (want \"2.1.0\")\n");
    return 1;
  }
  const obs::JsonValue* runs = doc.get("runs");
  if (runs == nullptr || !runs->isArray() || runs->array.empty()) {
    std::fprintf(stderr, "MISSING non-empty runs array\n");
    return 1;
  }
  int failures = 0;
  std::size_t totalResults = 0;
  for (const obs::JsonValue& run : runs->array) {
    const obs::JsonValue* tool = run.get("tool");
    const obs::JsonValue* driver =
        tool != nullptr ? tool->get("driver") : nullptr;
    const obs::JsonValue* name =
        driver != nullptr ? driver->get("name") : nullptr;
    if (name == nullptr || name->string.empty()) {
      std::fprintf(stderr, "MISSING tool.driver.name\n");
      ++failures;
    }
    std::set<std::string> ruleIds;
    const obs::JsonValue* rules =
        driver != nullptr ? driver->get("rules") : nullptr;
    if (rules != nullptr && rules->isArray()) {
      for (const obs::JsonValue& rule : rules->array) {
        const obs::JsonValue* id = rule.get("id");
        if (id != nullptr) ruleIds.insert(id->string);
      }
    }
    const obs::JsonValue* results = run.get("results");
    if (results == nullptr || !results->isArray()) {
      std::fprintf(stderr, "MISSING results array\n");
      ++failures;
      continue;
    }
    for (const obs::JsonValue& r : results->array) {
      ++totalResults;
      const obs::JsonValue* ruleId = r.get("ruleId");
      if (ruleId == nullptr || ruleIds.count(ruleId->string) == 0) {
        std::fprintf(stderr, "result with undeclared ruleId: %s\n",
                     ruleId == nullptr ? "(none)" : ruleId->string.c_str());
        ++failures;
      }
      const obs::JsonValue* message = r.get("message");
      const obs::JsonValue* msgText =
          message != nullptr ? message->get("text") : nullptr;
      if (msgText == nullptr || msgText->string.empty()) {
        std::fprintf(stderr, "result without message.text\n");
        ++failures;
      }
    }
  }
  if (static_cast<long>(totalResults) < minResults) {
    std::fprintf(stderr, "expected >= %ld results, found %zu\n", minResults,
                 totalResults);
    ++failures;
  }
  if (failures > 0) return 1;
  std::printf("OBS CHECK OK (%s: %zu sarif results)\n", path.c_str(),
              totalResults);
  return 0;
}

}  // namespace

int cmdObsCheck(const char* prog, int argc, char** argv) {
  if (argc < 2) return usage(prog);
  const std::string mode = argv[0];
  const std::string path = argv[1];
  if (mode == "metrics") return checkMetrics(prog, path, argc, argv, 2);
  if (mode == "chrome") {
    long minThreads = 1;
    if (argc > 2) minThreads = std::strtol(argv[2], nullptr, 10);
    return checkChrome(prog, path, minThreads);
  }
  if (mode == "sarif") {
    long minResults = 0;
    if (argc > 2) minResults = std::strtol(argv[2], nullptr, 10);
    return checkSarif(prog, path, minResults);
  }
  return usage(prog);
}

}  // namespace confail::cli
