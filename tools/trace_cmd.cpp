// `confail trace`: offline analysis of serialized execution traces.
//
//   trace render   <trace-file>          pretty-print the events
//   trace stats    <trace-file>          event/thread/monitor counts
//   trace validate <trace-file> [mon]    replay against the Figure 1 net
//   trace detect   <trace-file> [--metrics-out <file>]
//                                        detector battery + Table 1 classes
//   trace chrome   <trace-file> <out>    export as Chrome trace_event JSON
//   trace jsonl    <trace-file> <out>    export as JSONL for jq pipelines
//   trace selftest                       generate, round-trip, run all modes
//
// Trace files are produced by events::Trace::serialize(); any component run
// can be captured, shipped, and analyzed offline with this verb.
//
// Exit status follows cli.hpp: `detect` and `validate` return 1 when they
// have findings/violations, 0 when clean; `selftest` returns 0 when the
// machinery checks out; 2 usage, 3 internal.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <sstream>
#include <string>

#include "cli.hpp"
#include "confail/detect/report_sink.hpp"
#include "confail/detect/suite.hpp"
#include "confail/events/trace.hpp"
#include "confail/monitor/monitor.hpp"
#include "confail/monitor/runtime.hpp"
#include "confail/monitor/shared_var.hpp"
#include "confail/obs/metrics.hpp"
#include "confail/obs/trace_export.hpp"
#include "confail/petri/trace_validator.hpp"
#include "confail/sched/virtual_scheduler.hpp"
#include "confail/taxonomy/classifier.hpp"

namespace confail::cli {

namespace ev = confail::events;

namespace {

int usage(const char* prog) {
  std::fprintf(stderr,
               "usage: %s render|stats|validate <file>\n"
               "       %s detect <file> [--metrics-out <file>] "
               "[--sarif-out <file>] [--json-out <file>]\n"
               "       %s chrome|jsonl <file> <out-file>\n"
               "       %s selftest\n\n"
               "<file> may be '-' to read the serialized trace from stdin, "
               "so traces pipe\nstraight from capture to analysis.  For "
               "*live* JSONL event streams use\n`confail ingest` instead "
               "(same detector battery, incremental).\n",
               prog, prog, prog, prog);
  return 2;
}

ev::Trace load(const std::string& path) {
  std::ostringstream buf;
  if (path == "-") {
    buf << std::cin.rdbuf();
  } else {
    std::ifstream in(path);
    if (!in) {
      throw confail::UsageError("cannot open trace file: " + path);
    }
    buf << in.rdbuf();
  }
  return ev::Trace::deserialize(buf.str());
}

int doRender(const ev::Trace& trace) {
  trace.render(
      [](const std::string& line) { std::printf("%s\n", line.c_str()); });
  return 0;
}

int doStats(const ev::Trace& trace) {
  std::map<ev::EventKind, std::size_t> byKind;
  std::set<ev::ThreadId> threads;
  std::set<ev::MonitorId> monitors;
  std::set<ev::VarId> vars;
  for (const ev::Event& e : trace.events()) {
    ++byKind[e.kind];
    if (e.thread != ev::kNoThread) threads.insert(e.thread);
    if (e.monitor != ev::kNoMonitor) monitors.insert(e.monitor);
    if (e.kind == ev::EventKind::Read || e.kind == ev::EventKind::Write) {
      vars.insert(static_cast<ev::VarId>(e.aux));
    }
  }
  std::printf("events: %zu  threads: %zu  monitors: %zu  variables: %zu\n",
              trace.size(), threads.size(), monitors.size(), vars.size());
  for (const auto& [kind, count] : byKind) {
    std::printf("  %-14s %zu\n", ev::kindName(kind), count);
  }
  return 0;
}

int doValidate(const ev::Trace& trace, const char* monitorArg) {
  std::set<ev::MonitorId> monitors;
  if (monitorArg != nullptr) {
    monitors.insert(static_cast<ev::MonitorId>(std::stoul(monitorArg)));
  } else {
    for (const ev::Event& e : trace.events()) {
      if (e.monitor != ev::kNoMonitor) monitors.insert(e.monitor);
    }
  }
  int bad = 0;
  for (ev::MonitorId m : monitors) {
    auto v = confail::petri::validateTraceAgainstModel(trace, m);
    std::printf("monitor %s: %s (%zu transitions)\n",
                trace.monitorName(m).c_str(),
                v.ok ? "legal firing sequence" : v.message.c_str(),
                v.eventsChecked);
    bad += v.ok ? 0 : 1;
  }
  if (monitors.empty()) std::printf("no monitor events in trace\n");
  return bad == 0 ? 0 : 1;
}

int doDetect(const char* prog, const ev::Trace& trace,
             const std::string& metricsOut = "",
             const std::string& sarifOut = "",
             const std::string& jsonOut = "") {
  confail::obs::Registry metrics;
  confail::detect::DetectorSuite suite;
  suite.setMetrics(&metrics);
  // Route through the same ReportSink the streaming pipeline uses, so the
  // offline and online documents are byte-comparable for the same events.
  confail::detect::ReportSink sink;
  sink.setSource("trace");
  std::vector<confail::detect::Finding> findings;
  for (auto& report : suite.analyzeEach(trace)) {
    sink.addAll(report.detector, report.findings);
    for (auto& f : report.findings) findings.push_back(f);
  }
  if (!metricsOut.empty() && !metrics.snapshot().writeFile(metricsOut)) {
    std::fprintf(stderr, "%s: cannot write %s\n", prog, metricsOut.c_str());
    return 3;
  }
  const confail::detect::TraceNames names(trace);
  if (!sarifOut.empty() && !sink.writeSarifFile(names, sarifOut)) {
    std::fprintf(stderr, "%s: cannot write %s\n", prog, sarifOut.c_str());
    return 3;
  }
  if (!jsonOut.empty() && !sink.writeJsonFile(names, jsonOut)) {
    std::fprintf(stderr, "%s: cannot write %s\n", prog, jsonOut.c_str());
    return 3;
  }
  if (findings.empty()) {
    std::printf("no findings\n");
    return 0;
  }
  confail::taxonomy::FailureReport report;
  confail::taxonomy::Classifier::addFindings(report, findings, trace);
  for (const auto& f : findings) {
    std::printf("%s\n", f.describe(trace).c_str());
  }
  std::printf("\nclassified per Table 1:\n%s", report.describe().c_str());
  return 1;
}

int doExport(const char* prog, const ev::Trace& trace, const std::string& kind,
             const std::string& outPath) {
  const bool ok = kind == "chrome"
                      ? confail::obs::writeChromeTraceFile(trace, outPath)
                      : confail::obs::writeJsonlFile(trace, outPath);
  if (!ok) {
    std::fprintf(stderr, "%s: cannot write %s\n", prog, outPath.c_str());
    return 1;
  }
  std::printf("wrote %s (%zu events)\n", outPath.c_str(), trace.size());
  return 0;
}

int doSelftest(const char* prog) {
  // Build a demo trace with a seeded fault, round-trip it through the
  // serialized form, and run every command over the copy.
  ev::Trace trace;
  confail::sched::RoundRobinStrategy strategy;
  confail::sched::VirtualScheduler s(strategy);
  confail::monitor::Runtime rt(trace, s, 1);
  confail::monitor::Monitor m(rt, "demo");
  confail::monitor::SharedVar<int> x(rt, "x", 0);
  rt.spawn("locked", [&] {
    confail::monitor::Synchronized sync(m);
    x.set(x.get() + 1);
  });
  rt.spawn("racy", [&] { x.set(x.get() + 1); });
  auto run = s.run();
  std::printf("demo run: %s, %zu events\n",
              confail::sched::outcomeName(run.outcome), trace.size());

  ev::Trace copy = ev::Trace::deserialize(trace.serialize());
  if (copy.events() != trace.events()) {
    std::printf("serialization round-trip FAILED\n");
    return 1;
  }
  std::printf("-- stats --\n");
  doStats(copy);
  std::printf("-- validate --\n");
  doValidate(copy, nullptr);
  std::printf("-- detect --\n");
  doDetect(prog, copy);
  std::printf("-- export --\n");
  const std::string chrome = confail::obs::toChromeTrace(copy);
  const std::string jsonl = confail::obs::toJsonl(copy);
  if (chrome.find("\"traceEvents\"") == std::string::npos ||
      jsonl.find("\"kind\"") == std::string::npos) {
    std::printf("exporters FAILED\n");
    return 1;
  }
  std::printf("chrome export: %zu bytes, jsonl export: %zu bytes\n",
              chrome.size(), jsonl.size());
  std::printf("SELFTEST OK\n");
  return 0;
}

}  // namespace

int cmdTrace(const char* prog, int argc, char** argv) {
  if (argc < 1) return usage(prog);
  const std::string cmd = argv[0];
  try {
    if (cmd == "selftest") return doSelftest(prog);
    if (argc < 2) return usage(prog);
    ev::Trace trace = load(argv[1]);
    if (cmd == "render") return doRender(trace);
    if (cmd == "stats") return doStats(trace);
    if (cmd == "validate") {
      return doValidate(trace, argc >= 3 ? argv[2] : nullptr);
    }
    if (cmd == "detect") {
      std::string metricsOut;
      std::string sarifOut;
      std::string jsonOut;
      for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        const char* v = flagValue(i, argc, argv);
        if (v == nullptr) return usage(prog);
        if (arg == "--metrics-out") {
          metricsOut = v;
        } else if (arg == "--sarif-out") {
          sarifOut = v;
        } else if (arg == "--json-out") {
          jsonOut = v;
        } else {
          return usage(prog);
        }
      }
      return doDetect(prog, trace, metricsOut, sarifOut, jsonOut);
    }
    if (cmd == "chrome" || cmd == "jsonl") {
      if (argc < 3) return usage(prog);
      return doExport(prog, trace, cmd, argv[2]);
    }
    return usage(prog);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s: %s\n", prog, e.what());
    return 3;
  }
}

}  // namespace confail::cli
