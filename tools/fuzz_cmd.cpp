// `confail fuzz`: seeded scenario fuzzing with differential oracles.
//
// Generates monitor programs for a seed range, runs the differential
// oracles (incremental-vs-replay, reduction-equivalence,
// worker-determinism, clean-negative-control, injection-detection) on each,
// greedily shrinks any failing seed to a minimal IR reproducer, and emits
// the confail.fuzz.v1 report.
//
// Exit status: 0 when every oracle passed on every seed, 1 when a failure
// was found (the report carries the shrunk reproducer), 2 on usage errors.
#include <cstdio>
#include <cstring>
#include <string>

#include "cli.hpp"
#include "confail/gen/fuzz.hpp"

namespace confail::cli {

namespace {

int usage(const char* prog) {
  std::fprintf(
      stderr,
      "usage: %s [--seeds A..B | --seeds N] [--json] [--out FILE]\n"
      "            [--max-threads N] [--max-monitors N] [--max-vars N]\n"
      "            [--max-ops N] [--max-loop-iters N] [--no-loops]\n"
      "            [--no-wait-notify]\n"
      "            [--max-runs N] [--full-max-runs N] [--max-steps N]\n"
      "            [--max-depth N] [--oracle NAME] [--no-shrink]\n"
      "            [--max-failures N] [--sabotage none|drop-deadlocks]\n"
      "            [--progress]\n\n"
      "--seeds N is shorthand for --seeds 0..N.  --oracle restricts the\n"
      "harness to one oracle (repeat the flag for several):\n",
      prog);
  for (const std::string& n : gen::oracleNames()) {
    std::fprintf(stderr, "  %s\n", n.c_str());
  }
  std::fprintf(stderr,
               "\n--sabotage drop-deadlocks intentionally breaks the replay "
               "reference side\nof incremental-vs-replay (deadlocks "
               "misreported as completions) to prove\nthe harness catches "
               "a broken oracle and shrinks its reproducer.\n");
  return 2;
}

bool parseSeeds(const std::string& v, std::uint64_t& begin,
                std::uint64_t& end) {
  const std::size_t dots = v.find("..");
  try {
    if (dots == std::string::npos) {
      begin = 0;
      end = std::stoull(v);
    } else {
      begin = std::stoull(v.substr(0, dots));
      end = std::stoull(v.substr(dots + 2));
    }
  } catch (const std::exception&) {
    return false;
  }
  return end > begin;
}

}  // namespace

int cmdFuzz(const char* prog, int argc, char** argv) {
  gen::FuzzOptions opts;
  bool json = false;
  std::string outFile;
  bool oracleFiltered = false;

  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* { return flagValue(i, argc, argv); };
    auto nextU64 = [&](std::uint64_t& out) {
      return parseU64(prog, arg.c_str(), flagValue(i, argc, argv), out);
    };
    std::uint64_t n = 0;
    if (arg == "--seeds") {
      const char* v = next();
      if (v == nullptr || !parseSeeds(v, opts.seedBegin, opts.seedEnd)) {
        std::fprintf(stderr, "%s: bad --seeds range\n", prog);
        return usage(prog);
      }
    } else if (arg == "--json") {
      json = true;
    } else if (arg == "--out") {
      const char* v = next();
      if (v == nullptr) return usage(prog);
      outFile = v;
    } else if (arg == "--max-threads") {
      if (!nextU64(n)) return usage(prog);
      opts.cfg.maxThreads = static_cast<int>(n);
    } else if (arg == "--max-monitors") {
      if (!nextU64(n)) return usage(prog);
      opts.cfg.maxMonitors = static_cast<int>(n);
    } else if (arg == "--max-vars") {
      if (!nextU64(n)) return usage(prog);
      opts.cfg.maxVars = static_cast<int>(n);
    } else if (arg == "--max-ops") {
      if (!nextU64(n)) return usage(prog);
      opts.cfg.maxOpsPerThread = static_cast<int>(n);
    } else if (arg == "--max-loop-iters") {
      if (!nextU64(n)) return usage(prog);
      opts.cfg.maxLoopIters = static_cast<int>(n);
    } else if (arg == "--no-loops") {
      opts.cfg.allowLoops = false;
    } else if (arg == "--no-wait-notify") {
      opts.cfg.allowWaitNotify = false;
    } else if (arg == "--max-runs") {
      if (!nextU64(opts.oracle.maxRuns)) return usage(prog);
    } else if (arg == "--full-max-runs") {
      if (!nextU64(opts.oracle.fullMaxRuns)) return usage(prog);
    } else if (arg == "--max-steps") {
      if (!nextU64(opts.oracle.maxSteps)) return usage(prog);
    } else if (arg == "--max-depth") {
      if (!nextU64(n)) return usage(prog);
      opts.oracle.maxBranchDepth = static_cast<std::size_t>(n);
    } else if (arg == "--oracle") {
      const char* v = next();
      if (v == nullptr) return usage(prog);
      bool known = false;
      for (const std::string& name : gen::oracleNames()) known |= name == v;
      if (!known) {
        std::fprintf(stderr, "%s: unknown oracle '%s'\n", prog, v);
        return usage(prog);
      }
      if (!oracleFiltered) {
        // First filter: start from all-off, then switch on each named one.
        opts.oracle = gen::onlyOracle(opts.oracle, v);
        oracleFiltered = true;
      } else {
        const gen::OracleConfig one = gen::onlyOracle(opts.oracle, v);
        opts.oracle.checkIncremental |= one.checkIncremental;
        opts.oracle.checkReductions |= one.checkReductions;
        opts.oracle.checkWorkers |= one.checkWorkers;
        opts.oracle.checkClean |= one.checkClean;
        opts.oracle.checkInjection |= one.checkInjection;
        opts.oracle.checkStreaming |= one.checkStreaming;
        opts.oracle.checkModel |= one.checkModel;
      }
    } else if (arg == "--no-shrink") {
      opts.shrinkFailures = false;
    } else if (arg == "--max-failures") {
      if (!nextU64(n)) return usage(prog);
      opts.maxFailures = static_cast<std::size_t>(n);
    } else if (arg == "--sabotage") {
      const char* v = next();
      if (v == nullptr) return usage(prog);
      if (std::strcmp(v, "none") == 0) {
        opts.oracle.sabotage = gen::Sabotage::None;
      } else if (std::strcmp(v, "drop-deadlocks") == 0) {
        opts.oracle.sabotage = gen::Sabotage::DropDeadlocks;
      } else {
        std::fprintf(stderr, "%s: unknown sabotage '%s'\n", prog, v);
        return usage(prog);
      }
    } else if (arg == "--progress") {
      opts.stderrProgress = true;
    } else {
      std::fprintf(stderr, "%s: unknown flag '%s'\n", prog, arg.c_str());
      return usage(prog);
    }
  }
  if (!oracleFiltered) opts.oracle.checkClean = true;
  if (opts.cfg.maxThreads < opts.cfg.minThreads ||
      opts.cfg.maxMonitors < 1 || opts.cfg.maxVars < 1 ||
      opts.cfg.maxOpsPerThread < 3) {
    std::fprintf(stderr, "%s: degenerate generator config\n", prog);
    return 2;
  }

  const gen::FuzzReport report = gen::runFuzz(opts);
  const std::string doc = json ? report.toJson() + "\n" : report.human();
  std::fputs(doc.c_str(), stdout);
  if (!outFile.empty()) {
    std::FILE* f = std::fopen(outFile.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "%s: cannot write %s\n", prog, outFile.c_str());
      return 3;
    }
    const std::string jsonDoc = report.toJson();
    std::fputs(jsonDoc.c_str(), f);
    std::fputc('\n', f);
    std::fclose(f);
  }
  return report.ok() ? 0 : 1;
}

}  // namespace confail::cli
