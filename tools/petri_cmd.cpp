// confail petri — N x M thread/lock net analysis and the explorer ⊆ net
// cross-check oracle.
//
// Two halves, composable in one invocation:
//   * model checking: build the net for --threads x --monitors under
//     --model, enumerate (packed markings, optional symmetry reduction,
//     optional parallel frontier), verify the Table-1 temporal properties
//     (mutual exclusion, conservation, 1-boundedness, FF-T5 dead marking,
//     T5 liveness) and print/emit the verdicts;
//   * cross-check: explore the named registry scenarios with per-run trace
//     capture and require every visited marking to be net-reachable
//     (docs/petri.md for the contract).
//
// Exit 0 when the verdicts match the model's expected profile and the
// cross-check (if requested) found no violation; 1 otherwise; 2 on usage
// errors.  --json-out emits a confail.petri.v1 document.
#include <cstdio>
#include <cstring>
#include <exception>
#include <string>
#include <vector>

#include "cli.hpp"
#include "confail/inject/explore_config.hpp"
#include "confail/obs/json.hpp"
#include "confail/obs/metrics.hpp"
#include "confail/petri/cross_check.hpp"
#include "confail/petri/properties.hpp"
#include "confail/petri/symmetry.hpp"
#include "confail/petri/thread_lock_net.hpp"
#include "confail/support/assert.hpp"

namespace confail::cli {

namespace {

int usage(const char* prog) {
  std::fprintf(
      stderr,
      "usage: %s [options]\n"
      "  --threads N          net size: threads (default 2)\n"
      "  --monitors M         net size: monitors (default 1)\n"
      "  --model free|gated   notify model (default gated)\n"
      "  --symmetry none|threads|full\n"
      "                       canonical-form reduction (default threads)\n"
      "  --workers W          parallel frontier workers (default 1)\n"
      "  --max-states S       enumeration cap (default 1048576)\n"
      "  --cross-check S[,S]  also run the explorer-vs-net oracle on these\n"
      "                       registry scenarios (repeatable)\n"
      "  --max-runs R         exploration budget per scenario (default 2000)\n"
      "  --max-depth D        branch-depth bound for the exploration\n"
      "  --json-out FILE      confail.petri.v1 document\n"
      "  --metrics-out FILE   obs metrics snapshot (petri.* rows)\n",
      prog);
  return 2;
}

struct ScenarioCheck {
  std::string name;
  petri::CrossCheckReport report;
  std::uint64_t runsExplored = 0;
};

void splitCsv(const char* v, std::vector<std::string>& out) {
  std::string cur;
  for (const char* p = v;; ++p) {
    if (*p == ',' || *p == '\0') {
      if (!cur.empty()) out.push_back(cur);
      cur.clear();
      if (*p == '\0') break;
    } else {
      cur += *p;
    }
  }
}

const char* yesNo(bool b) { return b ? "yes" : "no"; }

}  // namespace

int cmdPetri(const char* prog, int argc, char** argv) {
  unsigned threads = 2;
  unsigned monitors = 1;
  petri::NotifyModel model = petri::NotifyModel::Gated;
  petri::Symmetry symmetry = petri::Symmetry::Threads;
  std::uint64_t workers = 1;
  std::uint64_t maxStates = std::uint64_t{1} << 20;
  std::uint64_t maxRuns = 2000;
  std::uint64_t maxDepth = 0;  // 0 = unbounded
  std::vector<std::string> crossScenarios;
  std::string jsonOut;
  std::string metricsOut;

  for (int i = 0; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strcmp(a, "--threads") == 0) {
      std::uint64_t v = 0;
      if (!parseU64(prog, a, flagValue(i, argc, argv), v)) return usage(prog);
      threads = static_cast<unsigned>(v);
    } else if (std::strcmp(a, "--monitors") == 0) {
      std::uint64_t v = 0;
      if (!parseU64(prog, a, flagValue(i, argc, argv), v)) return usage(prog);
      monitors = static_cast<unsigned>(v);
    } else if (std::strcmp(a, "--model") == 0) {
      const char* v = flagValue(i, argc, argv);
      if (v == nullptr) return usage(prog);
      if (std::strcmp(v, "free") == 0) {
        model = petri::NotifyModel::Free;
      } else if (std::strcmp(v, "gated") == 0) {
        model = petri::NotifyModel::Gated;
      } else {
        std::fprintf(stderr, "%s: unknown model '%s'\n", prog, v);
        return usage(prog);
      }
    } else if (std::strcmp(a, "--symmetry") == 0) {
      const char* v = flagValue(i, argc, argv);
      if (v == nullptr) return usage(prog);
      if (std::strcmp(v, "none") == 0) {
        symmetry = petri::Symmetry::None;
      } else if (std::strcmp(v, "threads") == 0) {
        symmetry = petri::Symmetry::Threads;
      } else if (std::strcmp(v, "full") == 0) {
        symmetry = petri::Symmetry::Full;
      } else {
        std::fprintf(stderr, "%s: unknown symmetry '%s'\n", prog, v);
        return usage(prog);
      }
    } else if (std::strcmp(a, "--workers") == 0) {
      if (!parseU64(prog, a, flagValue(i, argc, argv), workers)) {
        return usage(prog);
      }
    } else if (std::strcmp(a, "--max-states") == 0) {
      if (!parseU64(prog, a, flagValue(i, argc, argv), maxStates)) {
        return usage(prog);
      }
    } else if (std::strcmp(a, "--max-runs") == 0) {
      if (!parseU64(prog, a, flagValue(i, argc, argv), maxRuns)) {
        return usage(prog);
      }
    } else if (std::strcmp(a, "--max-depth") == 0) {
      if (!parseU64(prog, a, flagValue(i, argc, argv), maxDepth)) {
        return usage(prog);
      }
    } else if (std::strcmp(a, "--cross-check") == 0) {
      const char* v = flagValue(i, argc, argv);
      if (v == nullptr) return usage(prog);
      splitCsv(v, crossScenarios);
    } else if (std::strcmp(a, "--json-out") == 0) {
      const char* v = flagValue(i, argc, argv);
      if (v == nullptr) return usage(prog);
      jsonOut = v;
    } else if (std::strcmp(a, "--metrics-out") == 0) {
      const char* v = flagValue(i, argc, argv);
      if (v == nullptr) return usage(prog);
      metricsOut = v;
    } else {
      std::fprintf(stderr, "%s: unknown flag '%s'\n", prog, a);
      return usage(prog);
    }
  }
  if (threads < 1 || monitors < 1) {
    std::fprintf(stderr, "%s: need at least 1 thread and 1 monitor\n", prog);
    return usage(prog);
  }

  try {
    obs::Registry metrics;

    // --- model checking -----------------------------------------------------
    const petri::ThreadLockNet tl =
        petri::buildThreadLockNet(threads, monitors, model);
    petri::SymReachOptions ro;
    ro.maxStates = static_cast<std::size_t>(maxStates);
    ro.workers = static_cast<std::size_t>(workers);
    ro.symmetry = symmetry;
    ro.metrics = &metrics;
    const petri::ReachabilityResult reach = petri::reachableSymmetric(tl, ro);
    const petri::ModelVerdicts v = petri::verifyModel(tl, reach);
    const bool modelOk = v.consistentWith(tl) && reach.complete;

    std::printf("petri net: %u threads x %u monitors, %s notify — %zu places,"
                " %zu transitions\n",
                threads, monitors,
                model == petri::NotifyModel::Free ? "free" : "gated",
                tl.net.placeCount(), tl.net.transitionCount());
    std::printf(
        "reachability: %zu states", reach.stateCount());
    if (!reach.orbitSizes.empty()) {
      std::printf(" (%llu full, %.1fx reduction)",
                  static_cast<unsigned long long>(reach.fullStateCount()),
                  reach.stateCount() > 0
                      ? static_cast<double>(reach.fullStateCount()) /
                            static_cast<double>(reach.stateCount())
                      : 0.0);
    }
    std::printf(", %zu edges, %s\n", reach.edgeCount(),
                reach.complete ? "complete" : "CAPPED");
    std::printf("  symmetry %s, hits %llu, workers %llu, frontier peak %zu"
                " bytes\n",
                petri::symmetryName(symmetry),
                static_cast<unsigned long long>(reach.symmetryHits),
                static_cast<unsigned long long>(workers),
                reach.peakFrontierBytes);
    std::printf("dead markings: %zu", reach.deadStates.size());
    if (!reach.orbitSizes.empty()) {
      std::printf(" (%llu full)",
                  static_cast<unsigned long long>(reach.fullDeadStateCount()));
    }
    if (v.allWaitingDeadReachable) {
      std::printf("; all-waiting FF-T5 state REACHABLE, witness:");
      for (petri::TransitionId t : v.ffT5Witness) {
        std::printf(" %s", tl.net.transitionName(t).c_str());
      }
    }
    std::printf("\n");
    std::printf("properties: mutual-exclusion %s | conservation %s |"
                " 1-bounded %s | deadlock-free %s | T5-live %s%s\n",
                yesNo(v.mutualExclusion), yesNo(v.conservation),
                yesNo(v.oneBounded), yesNo(v.deadlockFree),
                v.t5LiveChecked ? yesNo(v.t5Live) : "unchecked",
                v.consistentWith(tl) ? "" : "  [UNEXPECTED PROFILE]");

    // --- cross-check --------------------------------------------------------
    std::vector<ScenarioCheck> checks;
    bool crossOk = true;
    for (const std::string& name : crossScenarios) {
      petri::CrossCheckOptions cc;
      cc.maxStates = static_cast<std::size_t>(maxStates);
      cc.workers = static_cast<std::size_t>(workers);
      cc.symmetry = symmetry == petri::Symmetry::Full
                        ? petri::Symmetry::Threads
                        : symmetry;  // scenario monitors are not symmetric
      petri::ModelCrossChecker checker(cc);

      sched::ExhaustiveExplorer::Options eo;
      eo.maxRuns = maxRuns;
      if (maxDepth > 0) eo.maxBranchDepth = static_cast<std::size_t>(maxDepth);
      inject::ExploreConfig cfg;
      cfg.scenario(name).captureRuns().explorer(eo);
      const auto outcome = cfg.explore([&](const inject::RunView& run) {
        if (run.trace != nullptr) {
          checker.addRun(*run.trace,
                         run.result.outcome != sched::Outcome::Completed);
        }
        return true;
      });

      ScenarioCheck sc;
      sc.name = name;
      sc.report = checker.report();
      sc.runsExplored = outcome.stats.runs;
      crossOk = crossOk && sc.report.ok;
      std::printf(
          "cross-check %s: %zu runs (%zu in scope, %zu out of scope, %zu"
          " empty), %zu markings + %zu gated checked, %zu failure states,"
          " %zu violations\n",
          name.c_str(), sc.report.runs, sc.report.inScopeRuns,
          sc.report.outOfScopeRuns, sc.report.emptyRuns,
          sc.report.markingsChecked, sc.report.gatedMarkingsChecked,
          sc.report.failureStatesChecked, sc.report.violations);
      if (!sc.report.ok) {
        std::printf("  first violation: %s\n",
                    sc.report.firstViolation.c_str());
      }
      checks.push_back(std::move(sc));
    }

    const bool ok = modelOk && crossOk;

    if (!jsonOut.empty()) {
      obs::JsonWriter w;
      w.beginObject();
      w.field("schema", "confail.petri.v1");
      w.key("net");
      w.beginObject();
      w.field("threads", threads);
      w.field("monitors", monitors);
      w.field("model", model == petri::NotifyModel::Free ? "free" : "gated");
      w.field("places", tl.net.placeCount());
      w.field("transitions", tl.net.transitionCount());
      w.endObject();
      w.key("reachability");
      w.beginObject();
      w.field("states", reach.stateCount());
      w.field("full_states", reach.fullStateCount());
      w.field("edges", reach.edgeCount());
      w.field("dead_states", reach.deadStates.size());
      w.field("full_dead_states", reach.fullDeadStateCount());
      w.field("complete", reach.complete);
      w.field("symmetry", petri::symmetryName(symmetry));
      w.field("symmetry_hits", reach.symmetryHits);
      w.field("workers", workers);
      w.field("frontier_peak_bytes", reach.peakFrontierBytes);
      w.endObject();
      w.key("properties");
      w.beginObject();
      w.field("mutual_exclusion", v.mutualExclusion);
      w.field("conservation", v.conservation);
      w.field("one_bounded", v.oneBounded);
      w.field("deadlock_free", v.deadlockFree);
      w.field("all_waiting_dead_reachable", v.allWaitingDeadReachable);
      w.field("t5_live_checked", v.t5LiveChecked);
      w.field("t5_live", v.t5Live);
      w.field("consistent", v.consistentWith(tl));
      w.key("ff_t5_witness");
      w.beginArray();
      for (petri::TransitionId t : v.ffT5Witness) {
        w.value(tl.net.transitionName(t));
      }
      w.endArray();
      w.endObject();
      w.key("cross_check");
      w.beginObject();
      w.field("ok", crossOk);
      w.key("scenarios");
      w.beginArray();
      for (const ScenarioCheck& sc : checks) {
        w.beginObject();
        w.field("name", sc.name);
        w.field("ok", sc.report.ok);
        w.field("runs", sc.report.runs);
        w.field("in_scope_runs", sc.report.inScopeRuns);
        w.field("out_of_scope_runs", sc.report.outOfScopeRuns);
        w.field("empty_runs", sc.report.emptyRuns);
        w.field("markings_checked", sc.report.markingsChecked);
        w.field("gated_markings_checked", sc.report.gatedMarkingsChecked);
        w.field("failure_states_checked", sc.report.failureStatesChecked);
        w.field("incomplete_skips", sc.report.incompleteSkips);
        w.field("nets_built", sc.report.netsBuilt);
        w.field("violations", sc.report.violations);
        if (!sc.report.firstViolation.empty()) {
          w.field("first_violation", sc.report.firstViolation);
        }
        w.endObject();
      }
      w.endArray();
      w.endObject();
      w.endObject();
      if (!w.writeFile(jsonOut)) {
        std::fprintf(stderr, "%s: cannot write %s\n", prog, jsonOut.c_str());
        return 3;
      }
    }
    if (!metricsOut.empty() && !metrics.snapshot().writeFile(metricsOut)) {
      std::fprintf(stderr, "%s: cannot write %s\n", prog, metricsOut.c_str());
      return 3;
    }

    std::printf(ok ? "PETRI OK\n" : "PETRI VIOLATIONS\n");
    return ok ? 0 : 1;
  } catch (const UsageError& e) {
    std::fprintf(stderr, "%s: %s\n", prog, e.what());
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s: %s\n", prog, e.what());
    return 3;
  }
}

}  // namespace confail::cli
