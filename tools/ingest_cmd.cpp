// `confail ingest`: online analysis of live event streams.
//
// Reads JSONL (obs::toJsonl) or Chrome trace_event JSON from a file, a
// pipe, or stdin ('-'), pushes the decoded events through the bounded
// SPSC ring into the incremental detector battery, and reports findings
// through the same ReportSink the offline battery uses — so
//
//   confail explore --scenario S --jsonl-out - | confail ingest -
//
// produces the same findings documents `confail trace detect` would on
// the recorded trace.  --follow tails a file that is still being
// appended to (a component under test writing its event log).
//
// Exit status follows cli.hpp: 0 on a clean ingest with no findings,
// 1 when the detectors produced findings, 2 usage, 3 internal.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>

#include "cli.hpp"
#include "confail/detect/report_sink.hpp"
#include "confail/ingest/pipeline.hpp"
#include "confail/obs/json.hpp"
#include "confail/obs/metrics.hpp"

namespace confail::cli {

namespace ingest = confail::ingest;

namespace {

int usage(const char* prog) {
  std::fprintf(stderr,
               "usage: %s <file|-> [--from jsonl|chrome] [--follow] "
               "[--idle-stop-ms N]\n"
               "               [--ring-capacity N] [--lossy] "
               "[--hb-max-vars N]\n"
               "               [--sarif-out FILE] [--json-out FILE] "
               "[--metrics-out FILE] [--json]\n\n"
               "Streams events through the incremental detector battery "
               "(same detectors,\nsame finding order as `%s trace detect` "
               "on the recorded trace).\n\n"
               "  --from jsonl     one JSON object per line, as written by "
               "`trace jsonl`\n"
               "                   or `explore --jsonl-out` (default; "
               "lossless)\n"
               "  --from chrome    a Chrome trace_event document "
               "(best-effort decode)\n"
               "  --follow         keep reading past EOF (tail a growing "
               "file); stops after\n"
               "                   --idle-stop-ms with no new bytes "
               "(default 1000)\n"
               "  --ring-capacity  event ring size (default 65536; "
               "rounded to a power of 2)\n"
               "  --lossy          drop events on ring overflow instead of "
               "backpressuring\n"
               "  --hb-max-vars    bound the happens-before core's variable "
               "history (0 = exact)\n"
               "  --sarif-out      write findings as SARIF 2.1.0\n"
               "  --json-out       write findings as confail.findings.v1 "
               "JSON\n"
               "  --metrics-out    write an obs metrics snapshot (also "
               "enables the per-core\n"
               "                   feed-latency percentiles in the "
               "summary)\n"
               "  --json           print the ingest summary as JSON\n",
               prog, prog);
  return 2;
}

void printHuman(const std::string& source, const ingest::IngestStats& st,
                const ingest::IngestPipeline& pipe,
                const detect::ReportSink& sink, const obs::Registry* metrics,
                std::size_t ringCapacity) {
  std::printf("source:         %s\n", source.c_str());
  std::printf("events:         %llu decoded, %llu analyzed (%llu lines, "
              "%llu bytes)\n",
              static_cast<unsigned long long>(st.eventsDecoded),
              static_cast<unsigned long long>(st.eventsAnalyzed),
              static_cast<unsigned long long>(st.lines),
              static_cast<unsigned long long>(st.bytes));
  std::printf("throughput:     %.0f events/sec (%.3f s)\n", st.eventsPerSec,
              st.elapsedSec);
  std::printf("ring:           capacity %zu, drops %llu\n", ringCapacity,
              static_cast<unsigned long long>(st.ringDrops));
  if (st.malformed > 0 || st.truncated > 0 || st.chromeUnmapped > 0) {
    std::printf("skipped:        %llu malformed, %llu truncated, "
                "%llu unmapped\n",
                static_cast<unsigned long long>(st.malformed),
                static_cast<unsigned long long>(st.truncated),
                static_cast<unsigned long long>(st.chromeUnmapped));
  }
  if (st.hbEvictions > 0) {
    std::printf("hb evictions:   %llu (bounded history; findings may "
                "under-approximate)\n",
                static_cast<unsigned long long>(st.hbEvictions));
  }
  if (metrics != nullptr) {
    // Percentile digests instead of raw bucket dumps: one line per
    // non-empty feed-latency histogram.
    const obs::Snapshot snap = metrics->snapshot();
    for (const auto& h : snap.histograms) {
      if (h.count == 0) continue;
      std::printf("latency:        %s %s\n", h.name.c_str(),
                  h.percentileLine().c_str());
    }
  }
  std::printf("findings:       %zu\n", sink.size());
  const detect::NameSource& names = pipe.names();
  for (const auto& entry : sink.entries()) {
    std::string where;
    if (entry.finding.thread != events::kNoThread) {
      where += " thread=" + names.threadName(entry.finding.thread);
    }
    if (entry.finding.thread2 != events::kNoThread) {
      where += " thread2=" + names.threadName(entry.finding.thread2);
    }
    if (entry.finding.monitor != events::kNoMonitor) {
      where += " monitor=" + names.monitorName(entry.finding.monitor);
    }
    if (entry.finding.var != events::kNoVar) {
      where += " var=" + names.varName(entry.finding.var);
    }
    std::printf("  [%s] %s: %s%s\n", entry.detector.c_str(),
                detect::findingKindName(entry.finding.kind),
                entry.finding.message.c_str(), where.c_str());
  }
}

void printJson(const std::string& source, const ingest::IngestStats& st,
               std::size_t ringCapacity) {
  obs::JsonWriter w;
  w.beginObject();
  w.field("source", source);
  w.field("bytes", st.bytes);
  w.field("lines", st.lines);
  w.field("events_decoded", st.eventsDecoded);
  w.field("events_analyzed", st.eventsAnalyzed);
  w.field("ring_capacity", static_cast<std::uint64_t>(ringCapacity));
  w.field("ring_drops", st.ringDrops);
  w.field("malformed", st.malformed);
  w.field("truncated", st.truncated);
  w.field("chrome_unmapped", st.chromeUnmapped);
  w.field("hb_evictions", st.hbEvictions);
  w.field("elapsed_sec", st.elapsedSec);
  w.field("events_per_sec", st.eventsPerSec);
  w.field("findings", st.findings);
  w.endObject();
  std::printf("%s\n", w.str().c_str());
}

}  // namespace

int cmdIngest(const char* prog, int argc, char** argv) {
  std::string input;
  ingest::IngestOptions opts;
  std::string sarifOut;
  std::string jsonOut;
  std::string metricsOut;
  bool json = false;

  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* { return flagValue(i, argc, argv); };
    try {
      if (arg == "--from") {
        const char* v = next();
        if (v == nullptr) return usage(prog);
        const std::string fmt = v;
        if (fmt == "jsonl") {
          opts.format = ingest::StreamFormat::Jsonl;
        } else if (fmt == "chrome") {
          opts.format = ingest::StreamFormat::Chrome;
        } else {
          std::fprintf(stderr, "%s: unknown format '%s'\n", prog,
                       fmt.c_str());
          return usage(prog);
        }
      } else if (arg == "--follow") {
        opts.follow = true;
      } else if (arg == "--idle-stop-ms") {
        const char* v = next();
        if (v == nullptr) return usage(prog);
        opts.followIdleStopMs = static_cast<std::uint32_t>(std::stoul(v));
      } else if (arg == "--ring-capacity") {
        const char* v = next();
        if (v == nullptr) return usage(prog);
        opts.ringCapacity = std::stoull(v);
      } else if (arg == "--lossy") {
        opts.lossy = true;
      } else if (arg == "--hb-max-vars") {
        const char* v = next();
        if (v == nullptr) return usage(prog);
        opts.suite.hbMaxVarHistory = std::stoull(v);
      } else if (arg == "--sarif-out") {
        const char* v = next();
        if (v == nullptr) return usage(prog);
        sarifOut = v;
      } else if (arg == "--json-out") {
        const char* v = next();
        if (v == nullptr) return usage(prog);
        jsonOut = v;
      } else if (arg == "--metrics-out") {
        const char* v = next();
        if (v == nullptr) return usage(prog);
        metricsOut = v;
      } else if (arg == "--json") {
        json = true;
      } else if (!arg.empty() && (arg[0] != '-' || arg == "-")) {
        if (!input.empty()) {
          std::fprintf(stderr, "%s: multiple inputs ('%s', '%s')\n", prog,
                       input.c_str(), arg.c_str());
          return usage(prog);
        }
        input = arg;
      } else {
        std::fprintf(stderr, "%s: unknown option '%s'\n", prog, arg.c_str());
        return usage(prog);
      }
    } catch (const std::exception&) {
      std::fprintf(stderr, "%s: bad value for %s\n", prog, arg.c_str());
      return usage(prog);
    }
  }
  if (input.empty()) return usage(prog);

  obs::Registry metrics;
  if (!metricsOut.empty()) opts.metrics = &metrics;

  std::ifstream file;
  std::istream* in = &std::cin;
  if (input != "-") {
    file.open(input, std::ios::binary);
    if (!file) {
      std::fprintf(stderr, "%s: cannot open %s\n", prog, input.c_str());
      return 3;
    }
    in = &file;
  }
  const std::string source = input == "-" ? "stdin" : input;

  ingest::IngestPipeline pipe(opts);
  detect::ReportSink sink;
  sink.setSource(source);
  ingest::IngestStats st;
  try {
    st = pipe.run(*in, sink);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s: %s\n", prog, e.what());
    return 3;
  }

  if (!metricsOut.empty() && !metrics.snapshot().writeFile(metricsOut)) {
    std::fprintf(stderr, "%s: cannot write %s\n", prog, metricsOut.c_str());
    return 3;
  }
  if (!sarifOut.empty() && !sink.writeSarifFile(pipe.names(), sarifOut)) {
    std::fprintf(stderr, "%s: cannot write %s\n", prog, sarifOut.c_str());
    return 3;
  }
  if (!jsonOut.empty() && !sink.writeJsonFile(pipe.names(), jsonOut)) {
    std::fprintf(stderr, "%s: cannot write %s\n", prog, jsonOut.c_str());
    return 3;
  }

  if (json) {
    printJson(source, st, opts.ringCapacity);
  } else {
    printHuman(source, st, pipe, sink,
               metricsOut.empty() ? nullptr : &metrics, opts.ringCapacity);
    std::printf("INGEST DONE\n");
  }
  return sink.empty() ? 0 : 1;
}

}  // namespace confail::cli
