# RNG audit: every source of randomness in the tree must flow through the
# seeded confail::support RNG, or seed-determinism (replay, the fuzz
# generator, DPOR witness comparison) silently breaks.  This script greps
# the shipped sources for the forbidden primitives and fails the ctest
# entry on any hit.
#
# Invoked as:  cmake -DREPO_ROOT=<root> -P rng_audit.cmake
if(NOT DEFINED REPO_ROOT)
  message(FATAL_ERROR "rng_audit: pass -DREPO_ROOT=<repository root>")
endif()

file(GLOB_RECURSE audit_sources
  "${REPO_ROOT}/src/*.cpp" "${REPO_ROOT}/src/*.hpp"
  "${REPO_ROOT}/tools/*.cpp" "${REPO_ROOT}/tools/*.hpp"
  "${REPO_ROOT}/bench/*.cpp" "${REPO_ROOT}/bench/*.hpp"
  "${REPO_ROOT}/tests/*.cpp")

# std::random_device / mt19937 smuggle in nondeterminism; rand()/srand()
# additionally share hidden global state across threads.  The word-boundary
# guard on rand( keeps srand's mention and identifiers like operand() from
# false-positives; srand( is matched on its own.
set(forbidden
  "std::random_device"
  "[^a-zA-Z0-9_]srand[ \t]*\\("
  "[^a-zA-Z0-9_.:]rand[ \t]*\\("
  "mt19937")

set(violations "")
foreach(src ${audit_sources})
  file(READ "${src}" contents)
  # Comments may (and do) name the forbidden primitives when documenting
  # this very policy; only code counts.
  string(REGEX REPLACE "//[^\n]*" "" contents "${contents}")
  foreach(pattern ${forbidden})
    string(REGEX MATCH "${pattern}" hit "${contents}")
    if(hit)
      string(APPEND violations "  ${src}: matches '${pattern}'\n")
    endif()
  endforeach()
endforeach()

if(violations)
  message(FATAL_ERROR "RNG AUDIT FAILED: unseeded randomness primitives\n"
                      "${violations}"
                      "route all randomness through the seeded support RNG")
endif()

list(LENGTH audit_sources n)
message(STATUS "RNG AUDIT OK (${n} sources scanned)")
