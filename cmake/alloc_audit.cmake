# Allocation audit: the ingest ring (and any other hot-path TU passed in)
# promises zero heap allocation on its steady-state paths — that is the
# "bounded-cost" half of the streaming-ingest contract.  This script greps
# the named sources for allocating constructs and fails on any hit, so the
# promise is enforced at build time rather than trusted to review.
#
# One-time construction cost is allowed: std::make_unique at construction
# does not match any pattern below, and that is deliberate — the audit
# bans *growth* (operator new, malloc, growable containers), not the
# fixed up-front buffer.
#
# Invoked as:  cmake -DAUDIT_FILES=<f1;f2;...> -P alloc_audit.cmake
if(NOT DEFINED AUDIT_FILES)
  message(FATAL_ERROR "alloc_audit: pass -DAUDIT_FILES=<files>")
endif()

set(forbidden
  "[^a-zA-Z0-9_]new[ \t(]"      # operator new / new-expressions
  "malloc[ \t]*\\("
  "calloc[ \t]*\\("
  "realloc[ \t]*\\("
  "push_back"
  "emplace_back"
  "emplace[ \t]*\\("
  "\\.resize[ \t]*\\("
  "\\.reserve[ \t]*\\("
  "std::vector"
  "std::string"
  "std::deque"
  "std::list"
  "std::map"
  "std::unordered")

set(violations "")
foreach(src ${AUDIT_FILES})
  if(NOT EXISTS "${src}")
    message(FATAL_ERROR "alloc_audit: no such file: ${src}")
  endif()
  file(READ "${src}" contents)
  # Comments are allowed to *talk* about allocation (this policy has to be
  # documented somewhere); only code counts.
  string(REGEX REPLACE "//[^\n]*" "" contents "${contents}")
  foreach(pattern ${forbidden})
    string(REGEX MATCH "${pattern}" hit "${contents}")
    if(hit)
      string(APPEND violations "  ${src}: matches '${pattern}'\n")
    endif()
  endforeach()
endforeach()

if(violations)
  message(FATAL_ERROR "ALLOC AUDIT FAILED: heap allocation in a hot-path TU\n"
                      "${violations}"
                      "hot-path transport must stay allocation-free; "
                      "allocate at construction instead")
endif()

list(LENGTH AUDIT_FILES n)
message(STATUS "ALLOC AUDIT OK (${n} hot-path sources scanned)")
