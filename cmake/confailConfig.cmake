# confail CMake package: import with find_package(confail CONFIG).
# Provides the confail::confail_<module> static library targets.
include(CMakeFindDependencyMacro)
find_dependency(Threads)
include("${CMAKE_CURRENT_LIST_DIR}/confailTargets.cmake")
